"""Fleet throughput sweep: scalar lane loop vs vectorized array program.

The fleet API (:class:`repro.core.batch.BatchIndependentSimulator`) runs
``n_lanes`` bit-identical learners behind one interface, with two
backends: ``scalar`` (a pure-Python loop of per-lane functional
simulators — the reference baseline) and ``vectorized`` (the numpy
lock-step array program).  This sweep measures both at a ladder of lane
counts and reports per-update throughput and the paired speedup, the
number that justifies the array program's existence: the vectorized
backend amortises interpreter dispatch over the lane axis, so its
advantage should *grow* with ``n_lanes`` (≈1× at one lane, ≥10× by a
few thousand).

Noise discipline matches :mod:`repro.perf.bench`: engines are
constructed untimed, each repeat times the scalar and vectorized runs
back-to-back in the same round, and the reported speedup is the median
of per-round per-update ratios (drift-cancelling).  Workloads are
normalised per *update* (``lanes x steps``), so the two backends may
run different step counts — the scalar baseline gets a smaller budget
at high lane counts to keep the sweep affordable.

Results land in BENCH snapshots under the top-level
``fleet_throughput`` key (see :mod:`repro.perf.snapshot`), and
``python -m repro.perf fleet --smoke --min-speedup N`` gates CI on the
vectorization win without wall-clock fingerprint games: a speedup is a
same-machine relative measure, comparable anywhere.

:func:`run_rule_throughput` prices the accelerated update rules
(:mod:`repro.algorithms`): each registered rule timed back-to-back with
the plain Q-Learning baseline in the same vectorized harness, reported
as a per-update overhead ratio (``python -m repro.perf fleet --rules
all --max-rule-overhead 3`` is the CI gate; snapshots store the record
under ``rule_throughput``).

:func:`run_sharded_throughput` is the companion sweep for the
process-parallel :class:`~repro.backends.sharded.ShardedFleetBackend`:
a worker-count ladder at a fixed lane count, recording both the
multi-core ratio against single-process vectorized and the
machine-portable ratio against scalar (``python -m repro.perf fleet
--workers 1,2,4``; snapshots store it under ``sharded_throughput``).

:func:`run_native_throughput` covers the fused compiled kernel
(:class:`~repro.backends.native.NativeFleetBackend`): native vs
vectorized back-to-back per lane count, with the machine-portable
``speedup_vs_vectorized`` ratio as the sentinel gate (``python -m
repro.perf fleet --backend native --min-speedup 3``; snapshots store it
under ``native_throughput``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from .stats import mad, median

#: Full-sweep lane ladder (the ISSUE's acceptance points).
LANE_COUNTS = (1, 16, 256, 4096)

#: Smoke ladder for CI: drops the expensive 4096-lane point.
SMOKE_LANE_COUNTS = (1, 16, 256)

#: Per-repeat update budgets (total across lanes, before the per-lane
#: step clamp).  The scalar budget is smaller — it is the slow baseline.
_VEC_BUDGET = 200_000
_VEC_STEP_CAP = 2_000
_SCALAR_BUDGET = 24_000
_SCALAR_STEP_CAP = 600


def _mdp(size: int = 16, actions: int = 8):
    from ..envs.gridworld import GridWorld

    return GridWorld.empty(size, actions).to_mdp()


def _config(**kw):
    from ..core.config import QTAccelConfig

    kw.setdefault("seed", 11)
    kw.setdefault("qmax_mode", "follow")
    return QTAccelConfig.qlearning(**kw)


def _steps(budget: int, cap: int, lanes: int) -> int:
    return max(1, min(cap, budget // lanes))


#: Update rules covered by :func:`run_rule_throughput` (every registered
#: rule, through its preset constructor so policies are consistent).
RULE_NAMES = ("qlearning", "sarsa", "momentum_qlearning", "target_qlearning")


def _rule_config(rule: str, **kw):
    from ..core.config import QTAccelConfig

    presets = {
        "qlearning": QTAccelConfig.qlearning,
        "sarsa": QTAccelConfig.sarsa,
        "momentum_qlearning": QTAccelConfig.momentum,
        "target_qlearning": QTAccelConfig.target_q,
    }
    if rule not in presets:
        raise KeyError(
            f"unknown rule {rule!r}; choose from {sorted(presets)}"
        )
    kw.setdefault("seed", 11)
    kw.setdefault("qmax_mode", "follow")
    return presets[rule](**kw)


def run_fleet_throughput(
    *,
    lane_counts: Sequence[int] = LANE_COUNTS,
    repeats: int = 3,
    warmup: int = 1,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Measure scalar vs vectorized fleet throughput per lane count.

    Returns the snapshot-embeddable record::

        {
          "lane_counts": [1, 16, 256, 4096],
          "repeats": 3,
          "points": {
            "4096": {
              "scalar":     {"steps", "updates", "seconds_median",
                             "seconds_mad", "updates_per_sec"},
              "vectorized": {...same keys...},
              "speedup": 37.2,        # median of paired per-round ratios
              "speedup_mad": 0.8,
            },
            ...
          },
        }

    ``quick`` divides the update budgets by 10 (CI smoke / tests).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    lane_counts = list(lane_counts)
    if not lane_counts or any(l < 1 for l in lane_counts):
        raise ValueError(f"lane_counts must be positive, got {lane_counts}")

    from ..backends.scalar import ScalarFleetBackend
    from ..backends.vectorized import VectorizedFleetBackend

    mdp, cfg = _mdp(), _config()
    scale = 10 if quick else 1
    points: dict[str, dict] = {}

    for lanes in lane_counts:
        vec_steps = _steps(_VEC_BUDGET // scale, _VEC_STEP_CAP // scale, lanes)
        sc_steps = _steps(_SCALAR_BUDGET // scale, _SCALAR_STEP_CAP // scale, lanes)

        # Constructed once, untimed; each repeat extends the same run —
        # steady-state throughput, no allocation cost in the loop.
        vec = VectorizedFleetBackend(mdp, cfg, num_agents=lanes)
        sc = ScalarFleetBackend(mdp, cfg, num_agents=lanes)
        for _ in range(warmup):
            vec.run(vec_steps)
            sc.run(sc_steps)

        vec_secs: list[float] = []
        sc_secs: list[float] = []
        ratios: list[float] = []
        for _ in range(repeats):
            t0 = clock()
            vec.run(vec_steps)
            t1 = clock()
            sc.run(sc_steps)
            t2 = clock()
            vec_secs.append(t1 - t0)
            sc_secs.append(t2 - t1)
            # Per-update times; the ratio is scalar/vectorized = speedup.
            v = (t1 - t0) / (lanes * vec_steps)
            s = (t2 - t1) / (lanes * sc_steps)
            if v > 0:
                ratios.append(s / v)

        def _side(steps: int, secs: list[float]) -> dict:
            med = median(secs)
            updates = lanes * steps
            return {
                "steps": steps,
                "updates": updates,
                "seconds_median": med,
                "seconds_mad": mad(secs),
                "updates_per_sec": updates / med if med > 0 else None,
            }

        points[str(lanes)] = {
            "scalar": _side(sc_steps, sc_secs),
            "vectorized": _side(vec_steps, vec_secs),
            "speedup": median(ratios) if ratios else None,
            "speedup_mad": mad(ratios) if ratios else None,
        }

    return {
        "lane_counts": lane_counts,
        "repeats": repeats,
        "quick": quick,
        "points": points,
    }


def check_min_speedup(record: dict, min_speedup: float, *, at_lanes: Optional[int] = None) -> tuple[bool, str]:
    """Gate a sweep record: does the largest measured lane count (or
    ``at_lanes``) reach ``min_speedup``?  Returns ``(ok, message)``."""
    points = record.get("points") or {}
    if not points:
        return False, "fleet sweep has no measured points"
    lanes = at_lanes if at_lanes is not None else max(int(k) for k in points)
    entry = points.get(str(lanes))
    if entry is None:
        return False, f"no fleet point at n_lanes={lanes}"
    speedup = entry.get("speedup")
    if speedup is None:
        return False, f"no speedup recorded at n_lanes={lanes}"
    ok = speedup >= min_speedup
    verdict = "ok" if ok else "FAIL"
    return ok, (
        f"fleet speedup at n_lanes={lanes}: {speedup:.2f}x "
        f"(floor {min_speedup:g}x) {verdict}"
    )


# ---------------------------------------------------------------------- #
# Update-rule sweep: vectorized throughput per registered rule
# ---------------------------------------------------------------------- #


def run_rule_throughput(
    *,
    rules: Sequence[str] = RULE_NAMES,
    n_lanes: int = 256,
    repeats: int = 3,
    warmup: int = 1,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Measure vectorized fleet throughput for each update rule.

    The accelerated rules (:mod:`repro.algorithms`) add extra per-lane
    tables and stage-3/4 arithmetic; this sweep prices that in software
    the way Fig. 3 prices it in DSPs.  Each rule is timed back-to-back
    with the plain Q-Learning baseline in the same round, and
    ``overhead`` is the median of the paired per-update ratios
    (rule/baseline — 1.0 means free, 2.0 means half the throughput).

    Returns the snapshot-embeddable record stored under the
    ``rule_throughput`` key::

        {
          "n_lanes": 256, "repeats": 3,
          "points": {
            "momentum_qlearning": {"steps", "updates", "seconds_median",
                                   "seconds_mad", "updates_per_sec",
                                   "overhead", "overhead_mad"},
            ...
          },
        }
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    rules = list(rules)
    if not rules:
        raise ValueError("rules must be non-empty")
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be positive, got {n_lanes}")

    from ..backends.vectorized import VectorizedFleetBackend

    mdp = _mdp()
    scale = 10 if quick else 1
    steps = _steps(_VEC_BUDGET // scale, _VEC_STEP_CAP // scale, n_lanes)

    base = VectorizedFleetBackend(
        mdp, _rule_config("qlearning"), num_agents=n_lanes
    )
    points: dict[str, dict] = {}
    for rule in rules:
        eng = VectorizedFleetBackend(mdp, _rule_config(rule), num_agents=n_lanes)
        for _ in range(warmup):
            eng.run(steps)
            base.run(steps)
        secs: list[float] = []
        ratios: list[float] = []
        for _ in range(repeats):
            t0 = clock()
            eng.run(steps)
            t1 = clock()
            base.run(steps)
            t2 = clock()
            secs.append(t1 - t0)
            if (t2 - t1) > 0:
                ratios.append((t1 - t0) / (t2 - t1))
        med = median(secs)
        updates = n_lanes * steps
        points[rule] = {
            "steps": steps,
            "updates": updates,
            "seconds_median": med,
            "seconds_mad": mad(secs),
            "updates_per_sec": updates / med if med > 0 else None,
            "overhead": median(ratios) if ratios else None,
            "overhead_mad": mad(ratios) if ratios else None,
        }

    return {
        "n_lanes": n_lanes,
        "repeats": repeats,
        "quick": quick,
        "steps": steps,
        "points": points,
    }


def check_rule_overhead(record: dict, max_overhead: float) -> tuple[bool, str]:
    """Gate a rule sweep record: every rule's per-update overhead vs the
    plain Q-Learning baseline must stay at or under ``max_overhead``.
    Returns ``(ok, message)``."""
    points = record.get("points") or {}
    if not points:
        return False, "rule sweep has no measured points"
    worst_rule, worst = None, None
    for rule, entry in points.items():
        overhead = entry.get("overhead")
        if overhead is None:
            return False, f"no overhead recorded for rule {rule!r}"
        if worst is None or overhead > worst:
            worst_rule, worst = rule, overhead
    ok = worst <= max_overhead
    verdict = "ok" if ok else "FAIL"
    return ok, (
        f"worst rule overhead: {worst_rule} {worst:.2f}x vs qlearning "
        f"(ceiling {max_overhead:g}x) {verdict}"
    )


def render_rule_throughput(record: dict) -> str:
    """Human-readable table of one rule sweep record."""
    out = [
        f"update-rule throughput (vectorized, n_lanes={record.get('n_lanes')}, "
        "per update):"
    ]
    header = f"{'rule':>20s} {'up/s':>14s} {'overhead':>9s}"
    out.append(header)
    out.append("-" * len(header))

    def _fmt(v):
        return f"{v:,.0f}" if isinstance(v, (int, float)) else "-"

    for rule, p in (record.get("points") or {}).items():
        ov = p.get("overhead")
        out.append(
            f"{rule:>20s} {_fmt(p.get('updates_per_sec')):>14s} "
            f"{(f'{ov:.2f}x' if ov is not None else '-'):>9s}"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------- #
# Sharded sweep: worker-count ladder at a fixed lane count
# ---------------------------------------------------------------------- #

#: Per-repeat update budget for the sharded sweep (larger than the
#: vectorized sweep's — process fan-out has fixed epoch costs that only
#: amortise over a meaningful step count).
_SHARD_BUDGET = 400_000
_SHARD_STEP_CAP = 4_000

#: Default worker ladder for ``run_sharded_throughput``.
WORKER_COUNTS = (1, 2, 4)


def run_sharded_throughput(
    *,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    n_lanes: int = 4096,
    repeats: int = 3,
    warmup: int = 1,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
    mp_context: str = "spawn",
) -> dict:
    """Measure sharded fleet throughput across a worker-count ladder.

    Every point runs the *same* ``n_lanes``-lane workload three ways —
    sharded (at that worker count), single-process vectorized, and (once
    per sweep) the scalar lane loop — so the record carries both
    speedups: ``speedup_vs_vectorized`` answers "does adding processes
    pay on this machine?" and ``speedup_vs_scalar`` is the
    machine-portable CI gate (sharded inherits the array program's
    10-30x scalar win even on a single core, so the gate holds where
    the multi-core ratio legitimately cannot).

    Checkpointing is disabled (``checkpoint_interval=0``) and the epoch
    is set to the whole repeat so the number isolates steady-state shard
    throughput, not supervisor overhead.  Returns the
    snapshot-embeddable record stored under ``sharded_throughput``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    worker_counts = list(worker_counts)
    if not worker_counts or any(w < 1 for w in worker_counts):
        raise ValueError(f"worker_counts must be positive, got {worker_counts}")
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be positive, got {n_lanes}")

    import os

    from ..backends.scalar import ScalarFleetBackend
    from ..backends.sharded import ShardedFleetBackend
    from ..backends.vectorized import VectorizedFleetBackend

    mdp, cfg = _mdp(), _config()
    scale = 10 if quick else 1
    steps = _steps(_SHARD_BUDGET // scale, _SHARD_STEP_CAP // scale, n_lanes)
    sc_steps = _steps(_SCALAR_BUDGET // scale, _SCALAR_STEP_CAP // scale, n_lanes)

    # Scalar baseline: measured once per sweep (it does not vary with
    # the worker count) and shared by every point's scalar speedup.
    sc = ScalarFleetBackend(mdp, cfg, num_agents=n_lanes)
    for _ in range(warmup):
        sc.run(sc_steps)
    sc_secs: list[float] = []
    for _ in range(repeats):
        t0 = clock()
        sc.run(sc_steps)
        sc_secs.append(clock() - t0)
    sc_med = median(sc_secs)
    sc_per_update = sc_med / (n_lanes * sc_steps) if sc_med > 0 else None

    def _side(side_steps: int, secs: list[float]) -> dict:
        med = median(secs)
        updates = n_lanes * side_steps
        return {
            "steps": side_steps,
            "updates": updates,
            "seconds_median": med,
            "seconds_mad": mad(secs),
            "updates_per_sec": updates / med if med > 0 else None,
        }

    points: dict[str, dict] = {}
    for workers in worker_counts:
        shard = ShardedFleetBackend(
            mdp,
            cfg,
            num_agents=n_lanes,
            num_workers=workers,
            epoch=steps,
            checkpoint_interval=0,
            mp_context=mp_context,
        )
        try:
            vec = VectorizedFleetBackend(mdp, cfg, num_agents=n_lanes)
            for _ in range(warmup):
                shard.run(steps)
                vec.run(steps)
            shard_secs: list[float] = []
            vec_secs: list[float] = []
            ratios: list[float] = []
            for _ in range(repeats):
                t0 = clock()
                shard.run(steps)
                t1 = clock()
                vec.run(steps)
                t2 = clock()
                shard_secs.append(t1 - t0)
                vec_secs.append(t2 - t1)
                if (t1 - t0) > 0:
                    ratios.append((t2 - t1) / (t1 - t0))
        finally:
            shard.close()

        shard_med = median(shard_secs)
        shard_per_update = (
            shard_med / (n_lanes * steps) if shard_med > 0 else None
        )
        points[str(workers)] = {
            "sharded": _side(steps, shard_secs),
            "vectorized": _side(steps, vec_secs),
            "speedup_vs_vectorized": median(ratios) if ratios else None,
            "speedup_vs_vectorized_mad": mad(ratios) if ratios else None,
            "speedup_vs_scalar": (
                sc_per_update / shard_per_update
                if sc_per_update and shard_per_update
                else None
            ),
        }

    return {
        "n_lanes": n_lanes,
        "worker_counts": worker_counts,
        "repeats": repeats,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "steps": steps,
        "scalar": _side(sc_steps, sc_secs),
        "points": points,
    }


def check_sharded_speedup(
    record: dict,
    min_speedup: float,
    *,
    vs: str = "scalar",
    at_workers: Optional[int] = None,
) -> tuple[bool, str]:
    """Gate a sharded sweep record against a speedup floor.

    ``vs`` chooses the ratio: ``"scalar"`` (machine-portable, the CI
    default) or ``"vectorized"`` (only meaningful on multi-core hosts).
    Checks the largest measured worker count unless ``at_workers`` pins
    a specific ladder point.  Returns ``(ok, message)``.
    """
    if vs not in ("scalar", "vectorized"):
        raise ValueError(f"vs must be 'scalar' or 'vectorized', got {vs!r}")
    points = record.get("points") or {}
    if not points:
        return False, "sharded sweep has no measured points"
    workers = at_workers if at_workers is not None else max(int(k) for k in points)
    entry = points.get(str(workers))
    if entry is None:
        return False, f"no sharded point at workers={workers}"
    speedup = entry.get(f"speedup_vs_{vs}")
    if speedup is None:
        return False, f"no speedup_vs_{vs} recorded at workers={workers}"
    ok = speedup >= min_speedup
    verdict = "ok" if ok else "FAIL"
    return ok, (
        f"sharded speedup vs {vs} at workers={workers}: {speedup:.2f}x "
        f"(floor {min_speedup:g}x) {verdict}"
    )


def render_sharded_throughput(record: dict) -> str:
    """Human-readable table of one sharded sweep record."""
    lanes = record.get("n_lanes")
    cpus = record.get("cpu_count")
    out = [
        f"sharded fleet throughput (n_lanes={lanes}, host cpus={cpus}, per update):"
    ]
    header = (
        f"{'workers':>8s} {'sharded up/s':>14s} {'vector up/s':>14s} "
        f"{'vs vector':>10s} {'vs scalar':>10s}"
    )
    out.append(header)
    out.append("-" * len(header))

    def _fmt(v):
        return f"{v:,.0f}" if isinstance(v, (int, float)) else "-"

    def _x(v):
        return f"{v:.2f}x" if isinstance(v, (int, float)) else "-"

    for workers in sorted((record.get("points") or {}), key=int):
        p = record["points"][workers]
        out.append(
            f"{workers:>8s} {_fmt((p.get('sharded') or {}).get('updates_per_sec')):>14s} "
            f"{_fmt((p.get('vectorized') or {}).get('updates_per_sec')):>14s} "
            f"{_x(p.get('speedup_vs_vectorized')):>10s} "
            f"{_x(p.get('speedup_vs_scalar')):>10s}"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------- #
# Native sweep: fused compiled kernel vs the vectorized array program
# ---------------------------------------------------------------------- #

#: Per-repeat update budget for the native sweep (the fused kernel
#: retires updates 5-50x faster than the numpy program, so it gets a
#: proportionally larger budget at the same wall-clock cost).
_NATIVE_BUDGET = 2_000_000
_NATIVE_STEP_CAP = 20_000


def run_native_throughput(
    *,
    lane_counts: Sequence[int] = LANE_COUNTS,
    repeats: int = 3,
    warmup: int = 1,
    quick: bool = False,
    kernel: Optional[str] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Measure native fused-kernel vs vectorized fleet throughput.

    The native backend (:class:`~repro.backends.native.NativeFleetBackend`)
    fuses the whole lock-step program — which the vectorized backend
    spreads over ~40 numpy array ops and ~10 temporaries per step —
    into one compiled lane-outer/step-inner pass.  This sweep times both
    back-to-back at each lane count; ``speedup_vs_vectorized`` is the
    median of paired per-update ratios (machine-portable, the CI
    sentinel's gate at 4096 lanes).

    ``kernel`` forwards a tier request (``numba``/``cc``/``python``);
    default resolves like the backend (env var, then auto).  Raises
    :class:`~repro.backends.native.NativeBackendUnavailableError` when
    no compiled tier exists.  Returns the snapshot-embeddable record
    stored under ``native_throughput``::

        {
          "lane_counts": [1, 16, 256, 4096],
          "repeats": 3, "kernel": "numba",
          "points": {
            "4096": {
              "native":     {"steps", "updates", "seconds_median",
                             "seconds_mad", "updates_per_sec"},
              "vectorized": {...same keys...},
              "speedup_vs_vectorized": 6.1,
              "speedup_vs_vectorized_mad": 0.2,
            },
            ...
          },
        }
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    lane_counts = list(lane_counts)
    if not lane_counts or any(l < 1 for l in lane_counts):
        raise ValueError(f"lane_counts must be positive, got {lane_counts}")

    from ..backends.native import NativeFleetBackend
    from ..backends.vectorized import VectorizedFleetBackend

    mdp, cfg = _mdp(), _config()
    scale = 10 if quick else 1
    points: dict[str, dict] = {}
    kernel_tier = None

    for lanes in lane_counts:
        nat_steps = _steps(_NATIVE_BUDGET // scale, _NATIVE_STEP_CAP // scale, lanes)
        vec_steps = _steps(_VEC_BUDGET // scale, _VEC_STEP_CAP // scale, lanes)

        nat = NativeFleetBackend(mdp, cfg, num_agents=lanes, kernel=kernel)
        vec = VectorizedFleetBackend(mdp, cfg, num_agents=lanes)
        kernel_tier = nat.kernel_tier
        # First native run also pays any one-time JIT/compile cost —
        # always warm at least once so repeats see the steady state.
        nat.run(nat_steps)
        vec.run(vec_steps)
        for _ in range(max(0, warmup - 1)):
            nat.run(nat_steps)
            vec.run(vec_steps)

        nat_secs: list[float] = []
        vec_secs: list[float] = []
        ratios: list[float] = []
        for _ in range(repeats):
            t0 = clock()
            nat.run(nat_steps)
            t1 = clock()
            vec.run(vec_steps)
            t2 = clock()
            nat_secs.append(t1 - t0)
            vec_secs.append(t2 - t1)
            n = (t1 - t0) / (lanes * nat_steps)
            v = (t2 - t1) / (lanes * vec_steps)
            if n > 0:
                ratios.append(v / n)

        def _side(steps: int, secs: list[float]) -> dict:
            med = median(secs)
            updates = lanes * steps
            return {
                "steps": steps,
                "updates": updates,
                "seconds_median": med,
                "seconds_mad": mad(secs),
                "updates_per_sec": updates / med if med > 0 else None,
            }

        points[str(lanes)] = {
            "native": _side(nat_steps, nat_secs),
            "vectorized": _side(vec_steps, vec_secs),
            "speedup_vs_vectorized": median(ratios) if ratios else None,
            "speedup_vs_vectorized_mad": mad(ratios) if ratios else None,
        }

    return {
        "lane_counts": lane_counts,
        "repeats": repeats,
        "quick": quick,
        "kernel": kernel_tier,
        "points": points,
    }


def check_native_speedup(
    record: dict, min_speedup: float, *, at_lanes: Optional[int] = None
) -> tuple[bool, str]:
    """Gate a native sweep record: ``speedup_vs_vectorized`` at the
    largest measured lane count (or ``at_lanes``) must reach
    ``min_speedup``.  Returns ``(ok, message)``."""
    points = record.get("points") or {}
    if not points:
        return False, "native sweep has no measured points"
    lanes = at_lanes if at_lanes is not None else max(int(k) for k in points)
    entry = points.get(str(lanes))
    if entry is None:
        return False, f"no native point at n_lanes={lanes}"
    speedup = entry.get("speedup_vs_vectorized")
    if speedup is None:
        return False, f"no speedup_vs_vectorized recorded at n_lanes={lanes}"
    ok = speedup >= min_speedup
    verdict = "ok" if ok else "FAIL"
    return ok, (
        f"native speedup vs vectorized at n_lanes={lanes} "
        f"(kernel={record.get('kernel')}): {speedup:.2f}x "
        f"(floor {min_speedup:g}x) {verdict}"
    )


def render_native_throughput(record: dict) -> str:
    """Human-readable table of one native sweep record."""
    out = [
        f"native fleet throughput (fused {record.get('kernel')} kernel vs "
        "vectorized, per update):"
    ]
    header = (
        f"{'n_lanes':>8s} {'native up/s':>14s} {'vector up/s':>14s} {'speedup':>9s}"
    )
    out.append(header)
    out.append("-" * len(header))

    def _fmt(v):
        return f"{v:,.0f}" if isinstance(v, (int, float)) else "-"

    for lanes in sorted((record.get("points") or {}), key=int):
        p = record["points"][lanes]
        sp = p.get("speedup_vs_vectorized")
        out.append(
            f"{lanes:>8s} {_fmt((p.get('native') or {}).get('updates_per_sec')):>14s} "
            f"{_fmt((p.get('vectorized') or {}).get('updates_per_sec')):>14s} "
            f"{(f'{sp:.2f}x' if sp is not None else '-'):>9s}"
        )
    return "\n".join(out)


def render_fleet_throughput(record: dict) -> str:
    """Human-readable table of one sweep record."""
    out = ["fleet throughput (vectorized vs scalar lane loop, per update):"]
    header = (
        f"{'n_lanes':>8s} {'scalar up/s':>14s} {'vector up/s':>14s} {'speedup':>9s}"
    )
    out.append(header)
    out.append("-" * len(header))

    def _fmt(v):
        return f"{v:,.0f}" if isinstance(v, (int, float)) else "-"

    for lanes in sorted((record.get("points") or {}), key=int):
        p = record["points"][lanes]
        sp = p.get("speedup")
        out.append(
            f"{lanes:>8s} {_fmt((p.get('scalar') or {}).get('updates_per_sec')):>14s} "
            f"{_fmt((p.get('vectorized') or {}).get('updates_per_sec')):>14s} "
            f"{(f'{sp:.2f}x' if sp is not None else '-'):>9s}"
        )
    return "\n".join(out)
