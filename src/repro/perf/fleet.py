"""Fleet throughput sweep: scalar lane loop vs vectorized array program.

The fleet API (:class:`repro.core.batch.BatchIndependentSimulator`) runs
``n_lanes`` bit-identical learners behind one interface, with two
backends: ``scalar`` (a pure-Python loop of per-lane functional
simulators — the reference baseline) and ``vectorized`` (the numpy
lock-step array program).  This sweep measures both at a ladder of lane
counts and reports per-update throughput and the paired speedup, the
number that justifies the array program's existence: the vectorized
backend amortises interpreter dispatch over the lane axis, so its
advantage should *grow* with ``n_lanes`` (≈1× at one lane, ≥10× by a
few thousand).

Noise discipline matches :mod:`repro.perf.bench`: engines are
constructed untimed, each repeat times the scalar and vectorized runs
back-to-back in the same round, and the reported speedup is the median
of per-round per-update ratios (drift-cancelling).  Workloads are
normalised per *update* (``lanes x steps``), so the two backends may
run different step counts — the scalar baseline gets a smaller budget
at high lane counts to keep the sweep affordable.

Results land in BENCH snapshots under the top-level
``fleet_throughput`` key (see :mod:`repro.perf.snapshot`), and
``python -m repro.perf fleet --smoke --min-speedup N`` gates CI on the
vectorization win without wall-clock fingerprint games: a speedup is a
same-machine relative measure, comparable anywhere.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from .stats import mad, median

#: Full-sweep lane ladder (the ISSUE's acceptance points).
LANE_COUNTS = (1, 16, 256, 4096)

#: Smoke ladder for CI: drops the expensive 4096-lane point.
SMOKE_LANE_COUNTS = (1, 16, 256)

#: Per-repeat update budgets (total across lanes, before the per-lane
#: step clamp).  The scalar budget is smaller — it is the slow baseline.
_VEC_BUDGET = 200_000
_VEC_STEP_CAP = 2_000
_SCALAR_BUDGET = 24_000
_SCALAR_STEP_CAP = 600


def _mdp(size: int = 16, actions: int = 8):
    from ..envs.gridworld import GridWorld

    return GridWorld.empty(size, actions).to_mdp()


def _config(**kw):
    from ..core.config import QTAccelConfig

    kw.setdefault("seed", 11)
    kw.setdefault("qmax_mode", "follow")
    return QTAccelConfig.qlearning(**kw)


def _steps(budget: int, cap: int, lanes: int) -> int:
    return max(1, min(cap, budget // lanes))


def run_fleet_throughput(
    *,
    lane_counts: Sequence[int] = LANE_COUNTS,
    repeats: int = 3,
    warmup: int = 1,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Measure scalar vs vectorized fleet throughput per lane count.

    Returns the snapshot-embeddable record::

        {
          "lane_counts": [1, 16, 256, 4096],
          "repeats": 3,
          "points": {
            "4096": {
              "scalar":     {"steps", "updates", "seconds_median",
                             "seconds_mad", "updates_per_sec"},
              "vectorized": {...same keys...},
              "speedup": 37.2,        # median of paired per-round ratios
              "speedup_mad": 0.8,
            },
            ...
          },
        }

    ``quick`` divides the update budgets by 10 (CI smoke / tests).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    lane_counts = list(lane_counts)
    if not lane_counts or any(l < 1 for l in lane_counts):
        raise ValueError(f"lane_counts must be positive, got {lane_counts}")

    from ..backends.scalar import ScalarFleetBackend
    from ..backends.vectorized import VectorizedFleetBackend

    mdp, cfg = _mdp(), _config()
    scale = 10 if quick else 1
    points: dict[str, dict] = {}

    for lanes in lane_counts:
        vec_steps = _steps(_VEC_BUDGET // scale, _VEC_STEP_CAP // scale, lanes)
        sc_steps = _steps(_SCALAR_BUDGET // scale, _SCALAR_STEP_CAP // scale, lanes)

        # Constructed once, untimed; each repeat extends the same run —
        # steady-state throughput, no allocation cost in the loop.
        vec = VectorizedFleetBackend(mdp, cfg, num_agents=lanes)
        sc = ScalarFleetBackend(mdp, cfg, num_agents=lanes)
        for _ in range(warmup):
            vec.run(vec_steps)
            sc.run(sc_steps)

        vec_secs: list[float] = []
        sc_secs: list[float] = []
        ratios: list[float] = []
        for _ in range(repeats):
            t0 = clock()
            vec.run(vec_steps)
            t1 = clock()
            sc.run(sc_steps)
            t2 = clock()
            vec_secs.append(t1 - t0)
            sc_secs.append(t2 - t1)
            # Per-update times; the ratio is scalar/vectorized = speedup.
            v = (t1 - t0) / (lanes * vec_steps)
            s = (t2 - t1) / (lanes * sc_steps)
            if v > 0:
                ratios.append(s / v)

        def _side(steps: int, secs: list[float]) -> dict:
            med = median(secs)
            updates = lanes * steps
            return {
                "steps": steps,
                "updates": updates,
                "seconds_median": med,
                "seconds_mad": mad(secs),
                "updates_per_sec": updates / med if med > 0 else None,
            }

        points[str(lanes)] = {
            "scalar": _side(sc_steps, sc_secs),
            "vectorized": _side(vec_steps, vec_secs),
            "speedup": median(ratios) if ratios else None,
            "speedup_mad": mad(ratios) if ratios else None,
        }

    return {
        "lane_counts": lane_counts,
        "repeats": repeats,
        "quick": quick,
        "points": points,
    }


def check_min_speedup(record: dict, min_speedup: float, *, at_lanes: Optional[int] = None) -> tuple[bool, str]:
    """Gate a sweep record: does the largest measured lane count (or
    ``at_lanes``) reach ``min_speedup``?  Returns ``(ok, message)``."""
    points = record.get("points") or {}
    if not points:
        return False, "fleet sweep has no measured points"
    lanes = at_lanes if at_lanes is not None else max(int(k) for k in points)
    entry = points.get(str(lanes))
    if entry is None:
        return False, f"no fleet point at n_lanes={lanes}"
    speedup = entry.get("speedup")
    if speedup is None:
        return False, f"no speedup recorded at n_lanes={lanes}"
    ok = speedup >= min_speedup
    verdict = "ok" if ok else "FAIL"
    return ok, (
        f"fleet speedup at n_lanes={lanes}: {speedup:.2f}x "
        f"(floor {min_speedup:g}x) {verdict}"
    )


def render_fleet_throughput(record: dict) -> str:
    """Human-readable table of one sweep record."""
    out = ["fleet throughput (vectorized vs scalar lane loop, per update):"]
    header = (
        f"{'n_lanes':>8s} {'scalar up/s':>14s} {'vector up/s':>14s} {'speedup':>9s}"
    )
    out.append(header)
    out.append("-" * len(header))

    def _fmt(v):
        return f"{v:,.0f}" if isinstance(v, (int, float)) else "-"

    for lanes in sorted((record.get("points") or {}), key=int):
        p = record["points"][lanes]
        sp = p.get("speedup")
        out.append(
            f"{lanes:>8s} {_fmt((p.get('scalar') or {}).get('updates_per_sec')):>14s} "
            f"{_fmt((p.get('vectorized') or {}).get('updates_per_sec')):>14s} "
            f"{(f'{sp:.2f}x' if sp is not None else '-'):>9s}"
        )
    return "\n".join(out)
