"""The regression sentinel: diff two bench snapshots, gate CI.

For every case present in both snapshots the sentinel compares median
wall-clock with a noise-aware threshold::

    regression  iff  new_median - base_median > max(rel_tol * base_median,
                                                    k * max(base_mad, new_mad))

``rel_tol`` absorbs run-to-run jitter the MAD underestimates on tiny
repeat counts; ``k * MAD`` widens the gate when a snapshot admits (via
its own spread) that its central estimate is soft.  Improvements are
reported, never fatal.

Wall-clock gating only applies when the two machine fingerprints match
— a laptop baseline must not fail a CI runner for being a slower
computer.  Two families gate regardless of machine:

* ``cycles_per_sample`` — deterministic; any increase beyond a strict
  tolerance is an architectural regression, not noise;
* overhead ``ratio``s — relative measures taken on one machine, checked
  against their recorded ``budget`` (the telemetry budget pins the
  documented <5% claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .snapshot import fingerprints_match

#: Default relative slowdown tolerated before a wall-clock regression.
DEFAULT_REL_TOL = 0.10

#: Default MAD multiplier in the threshold.
DEFAULT_K = 4.0

#: Deterministic cycle counts get a much tighter relative gate.
CYCLES_REL_TOL = 0.01

#: Serve-path throughput tolerance: loopback sockets + thread scheduling
#: are far noisier than numpy loops, so the gate is wider than rel_tol.
SERVE_REL_TOL = 0.25

#: Serve p99 action latency may double before the sentinel calls it a
#: regression (tail latency on a busy CI host is the noisiest number
#: the observatory records).
SERVE_P99_REL_TOL = 1.00

#: Native-kernel speedup ratio tolerance.  ``speedup_vs_vectorized`` is
#: a same-process relative measure (both sides timed back-to-back on
#: one machine), so it gates across fingerprints — but it still moves
#: with cache pressure and core count, hence a wide band.
NATIVE_REL_TOL = 0.25


@dataclass
class Finding:
    """One sentinel verdict line."""

    kind: str  # "time" | "cycles" | "budget" | "info"
    case: str
    verdict: str  # "ok" | "regression" | "improvement" | "skipped"
    detail: str

    @property
    def failed(self) -> bool:
        return self.verdict == "regression"


@dataclass
class CompareResult:
    """Everything the CLI renders; ``ok`` drives the exit code."""

    base_source: str
    new_source: str
    same_machine: bool
    findings: list[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.failed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _median_mad(case: dict) -> tuple[Optional[float], float]:
    sec = case.get("seconds")
    if not isinstance(sec, dict) or sec.get("median") is None:
        return None, 0.0
    return float(sec["median"]), float(sec.get("mad") or 0.0)


def compare_snapshots(
    base: dict,
    new: dict,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    k: float = DEFAULT_K,
    force_absolute: bool = False,
) -> CompareResult:
    """Run the sentinel over two loaded snapshots."""
    if rel_tol < 0 or k < 0:
        raise ValueError("rel_tol and k must be non-negative")
    same_machine = fingerprints_match(base.get("machine"), new.get("machine"))
    gate_time = same_machine or force_absolute
    result = CompareResult(
        base_source=base.get("source", "?"),
        new_source=new.get("source", "?"),
        same_machine=same_machine,
    )
    findings = result.findings

    base_cases = base.get("cases", {})
    new_cases = new.get("cases", {})
    shared = sorted(set(base_cases) & set(new_cases))
    for name in sorted(set(base_cases) - set(new_cases)):
        findings.append(Finding("info", name, "skipped", "case missing from new snapshot"))
    for name in sorted(set(new_cases) - set(base_cases)):
        findings.append(Finding("info", name, "skipped", "case new in this snapshot"))

    for name in shared:
        b, n = base_cases[name], new_cases[name]

        # Wall-clock medians (machine-bound).
        b_med, b_mad = _median_mad(b)
        n_med, n_mad = _median_mad(n)
        if b_med is not None and n_med is not None:
            if not gate_time:
                findings.append(
                    Finding(
                        "time",
                        name,
                        "skipped",
                        "different machine fingerprint; wall-clock not gated "
                        "(use --absolute to force)",
                    )
                )
            else:
                delta = n_med - b_med
                threshold = max(rel_tol * b_med, k * max(b_mad, n_mad))
                pct = 100.0 * delta / b_med if b_med else 0.0
                detail = (
                    f"median {b_med:.6g}s -> {n_med:.6g}s "
                    f"({pct:+.1f}%, threshold ±{100.0 * threshold / b_med:.1f}%)"
                )
                if delta > threshold:
                    findings.append(Finding("time", name, "regression", detail))
                elif -delta > threshold:
                    findings.append(Finding("time", name, "improvement", detail))
                else:
                    findings.append(Finding("time", name, "ok", detail))

        # Cycle counts (deterministic, machine-independent).
        b_cps, n_cps = b.get("cycles_per_sample"), n.get("cycles_per_sample")
        if b_cps is not None and n_cps is not None:
            detail = f"cycles/sample {b_cps:.6g} -> {n_cps:.6g}"
            if n_cps > b_cps * (1.0 + CYCLES_REL_TOL):
                findings.append(Finding("cycles", name, "regression", detail))
            elif n_cps < b_cps * (1.0 - CYCLES_REL_TOL):
                findings.append(Finding("cycles", name, "improvement", detail))
            else:
                findings.append(Finding("cycles", name, "ok", detail))

    # Serve-path throughput and latency (wall-clock; machine-bound),
    # healthy and degraded (mid-recovery) alike.
    _compare_serve(
        base.get("serve_throughput"),
        new.get("serve_throughput"),
        gate_time=gate_time,
        findings=findings,
    )
    _compare_serve(
        base.get("degraded_throughput"),
        new.get("degraded_throughput"),
        gate_time=gate_time,
        findings=findings,
        label="degraded",
    )

    # Native fused-kernel sweep (speedup ratio machine-portable;
    # absolute updates/sec machine-bound).
    _compare_native(
        base.get("native_throughput"),
        new.get("native_throughput"),
        gate_time=gate_time,
        findings=findings,
    )

    # Overhead budgets (relative; machine-independent).
    new_over = new.get("overheads", {})
    base_over = base.get("overheads", {})
    for name in sorted(set(new_over) | set(base_over)):
        entry = new_over.get(name)
        if entry is None:
            findings.append(
                Finding("budget", name, "skipped", "overhead not measured in new snapshot")
            )
            continue
        ratio = entry.get("ratio")
        budget = entry.get("budget")
        if budget is None and name in base_over:
            budget = base_over[name].get("budget")
        if ratio is None:
            findings.append(Finding("budget", name, "skipped", "no ratio recorded"))
            continue
        b_ratio = (base_over.get(name) or {}).get("ratio")
        trend = f" (baseline {b_ratio:.4g})" if b_ratio is not None else ""
        if budget is None:
            findings.append(
                Finding("budget", name, "ok", f"ratio {ratio:.4g}{trend}; informational")
            )
        elif ratio > budget:
            findings.append(
                Finding(
                    "budget",
                    name,
                    "regression",
                    f"ratio {ratio:.4g} exceeds budget {budget:.4g}{trend}",
                )
            )
        else:
            findings.append(
                Finding("budget", name, "ok", f"ratio {ratio:.4g} within budget {budget:.4g}{trend}")
            )

    return result


def _compare_serve(
    base: Optional[dict],
    new: Optional[dict],
    *,
    gate_time: bool,
    findings: list,
    label: str = "serve",
) -> None:
    """Sentinel findings for one serve-bench snapshot key.

    Used for both ``serve_throughput`` (``label="serve"``) and its
    chaos-mode twin ``degraded_throughput`` (``label="degraded"``, the
    same workload timed through a hung-worker recovery).  Throughput
    (sessions/sec, transitions/sec) regresses when it drops by more
    than ``SERVE_REL_TOL``; p99 action latency regresses when it grows
    by more than ``SERVE_P99_REL_TOL``.  Both are wall-clock numbers,
    so — like case timings — they only gate when the machine
    fingerprints match.  Records taken at different load shapes
    (engine/lanes/concurrency, healthy vs chaos) are not comparable
    and are skipped.
    """
    if base is None and new is None:
        return
    if base is None:
        findings.append(
            Finding("info", label, "skipped", f"{label} bench new in this snapshot")
        )
        return
    if new is None:
        findings.append(
            Finding("info", label, "skipped", f"{label} bench missing from new snapshot")
        )
        return
    if not gate_time:
        findings.append(
            Finding(
                "time",
                label,
                "skipped",
                f"different machine fingerprint; {label} throughput not gated",
            )
        )
        return
    shape_keys = (
        "engine", "lanes", "concurrency", "sessions",
        "transitions_per_session", "chaos",
    )
    if any(base.get(k) != new.get(k) for k in shape_keys):
        findings.append(
            Finding(
                "time",
                label,
                "skipped",
                f"{label} bench shapes differ between snapshots; not comparable",
            )
        )
        return

    for metric in ("sessions_per_sec", "transitions_per_sec"):
        b, n = base.get(metric), new.get(metric)
        if b is None or n is None or b <= 0:
            continue
        pct = 100.0 * (n - b) / b
        detail = f"{metric} {b:.6g} -> {n:.6g} ({pct:+.1f}%, floor -{100 * SERVE_REL_TOL:.0f}%)"
        if n < b * (1.0 - SERVE_REL_TOL):
            findings.append(Finding("time", f"{label}.{metric}", "regression", detail))
        elif n > b * (1.0 + SERVE_REL_TOL):
            findings.append(Finding("time", f"{label}.{metric}", "improvement", detail))
        else:
            findings.append(Finding("time", f"{label}.{metric}", "ok", detail))

    b_p99 = (base.get("act_latency_ms") or {}).get("p99")
    n_p99 = (new.get("act_latency_ms") or {}).get("p99")
    if b_p99 and n_p99:
        pct = 100.0 * (n_p99 - b_p99) / b_p99
        detail = (
            f"act p99 {b_p99:.4g}ms -> {n_p99:.4g}ms "
            f"({pct:+.1f}%, ceiling +{100 * SERVE_P99_REL_TOL:.0f}%)"
        )
        if n_p99 > b_p99 * (1.0 + SERVE_P99_REL_TOL):
            findings.append(Finding("time", f"{label}.act_p99", "regression", detail))
        elif n_p99 < b_p99 * (1.0 - SERVE_REL_TOL):
            findings.append(Finding("time", f"{label}.act_p99", "improvement", detail))
        else:
            findings.append(Finding("time", f"{label}.act_p99", "ok", detail))


def _compare_native(
    base: Optional[dict],
    new: Optional[dict],
    *,
    gate_time: bool,
    findings: list,
) -> None:
    """Sentinel findings for the ``native_throughput`` sweep.

    Two gates with different portability.  ``speedup_vs_vectorized``
    is a ratio of two back-to-back timings in one process, so it is
    meaningful across machine fingerprints and gates unconditionally
    (band ``NATIVE_REL_TOL``) — this is the sentinel that pins the
    native kernel's headline claim.  Absolute native ``updates_per_sec``
    is wall-clock and only gates when the fingerprints match.  Records
    taken with different kernel tiers or sweep shapes (quick vs full)
    are not comparable and are skipped.
    """
    if base is None and new is None:
        return
    if base is None:
        findings.append(
            Finding("info", "native", "skipped", "native bench new in this snapshot")
        )
        return
    if new is None:
        findings.append(
            Finding("info", "native", "skipped", "native bench missing from new snapshot")
        )
        return
    if any(base.get(k) != new.get(k) for k in ("kernel", "quick")):
        findings.append(
            Finding(
                "time",
                "native",
                "skipped",
                "native bench shapes differ (kernel tier or sweep size); "
                "not comparable",
            )
        )
        return
    common = sorted(
        set(base.get("points", {})) & set(new.get("points", {})), key=int
    )
    if not common:
        findings.append(
            Finding("time", "native", "skipped", "no common lane counts between sweeps")
        )
        return
    lanes = common[-1]
    b_pt, n_pt = base["points"][lanes], new["points"][lanes]

    b_sp, n_sp = b_pt.get("speedup_vs_vectorized"), n_pt.get("speedup_vs_vectorized")
    if b_sp and n_sp:
        pct = 100.0 * (n_sp - b_sp) / b_sp
        detail = (
            f"speedup@{lanes} lanes {b_sp:.3g}x -> {n_sp:.3g}x "
            f"({pct:+.1f}%, floor -{100 * NATIVE_REL_TOL:.0f}%)"
        )
        if n_sp < b_sp * (1.0 - NATIVE_REL_TOL):
            findings.append(Finding("time", "native.speedup", "regression", detail))
        elif n_sp > b_sp * (1.0 + NATIVE_REL_TOL):
            findings.append(Finding("time", "native.speedup", "improvement", detail))
        else:
            findings.append(Finding("time", "native.speedup", "ok", detail))

    b_ups = (b_pt.get("native") or {}).get("updates_per_sec")
    n_ups = (n_pt.get("native") or {}).get("updates_per_sec")
    if b_ups and n_ups:
        if not gate_time:
            findings.append(
                Finding(
                    "time",
                    "native.updates_per_sec",
                    "skipped",
                    "different machine fingerprint; native wall-clock not gated",
                )
            )
        else:
            pct = 100.0 * (n_ups - b_ups) / b_ups
            detail = (
                f"native updates/s@{lanes} lanes {b_ups:.4g} -> {n_ups:.4g} "
                f"({pct:+.1f}%, floor -{100 * NATIVE_REL_TOL:.0f}%)"
            )
            if n_ups < b_ups * (1.0 - NATIVE_REL_TOL):
                findings.append(
                    Finding("time", "native.updates_per_sec", "regression", detail)
                )
            elif n_ups > b_ups * (1.0 + NATIVE_REL_TOL):
                findings.append(
                    Finding("time", "native.updates_per_sec", "improvement", detail)
                )
            else:
                findings.append(Finding("time", "native.updates_per_sec", "ok", detail))


def render_comparison(result: CompareResult) -> str:
    """Human-readable sentinel report."""
    out = ["== perf sentinel =="]
    out.append(f"base: {result.base_source}   new: {result.new_source}")
    out.append(
        "machine fingerprints match — wall-clock gated"
        if result.same_machine
        else "machine fingerprints differ — wall-clock informational only"
    )
    width = max((len(f.case) for f in result.findings), default=4)
    mark = {"ok": " ok ", "regression": "FAIL", "improvement": "GAIN", "skipped": "skip"}
    for f in result.findings:
        out.append(f"[{mark[f.verdict]}] {f.kind:7s} {f.case.ljust(width)}  {f.detail}")
    n_fail = len(result.regressions)
    out.append(
        "sentinel: PASS (no regressions)"
        if result.ok
        else f"sentinel: FAIL ({n_fail} regression{'s' if n_fail != 1 else ''})"
    )
    return "\n".join(out)
