"""The noise-aware bench harness over every engine's hot loop.

Each :class:`BenchCase` times a fixed workload on one engine variant:

* ``functional`` — the vectorless fast path convergence studies run on;
* ``pipeline`` — the cycle-accurate 4-stage pipeline, detached;
* ``pipeline_telemetry`` — the same pipeline attached to a counters-only
  :class:`~repro.telemetry.session.TelemetrySession`;
* ``pipeline_ecc`` — the same pipeline over SECDED-protected tables
  (``ecc_tables=True``);
* ``batch_fleet`` — the vectorised lock-step fleet;
* ``multi_pipeline`` — two table-sharing pipelines (Fig. 8 mode).

Noise discipline: every case gets ``warmup`` untimed runs, then the
timed repeats are **globally interleaved** (round-robin across cases)
so slow drift — thermal throttling, a neighbour stealing the core —
lands on all cases alike instead of biasing whichever ran last.  The
summary is median + MAD + bootstrap CI (:mod:`repro.perf.stats`).

Overhead ratios are the **median of paired per-round ratios**: repeat
``i`` of a variant and of its baseline run back-to-back in the same
interleaved round, so dividing them first and taking the median across
rounds cancels slow drift that a ratio-of-medians would double-count
(on a busy 1-CPU box the latter wanders ±15%; the paired median stays
within a few percent).  ``pipeline_telemetry / pipeline`` is the
instrumentation tax (its budget pins the documented <5%
disabled-telemetry claim from docs/observability.md — the attached
counters-only ratio strictly upper-bounds the detached pointer-test
cost, so holding the attached ratio under budget holds the claim), and
``pipeline_ecc / pipeline`` prices the decode-on-read ECC path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .stagetime import StageTimer
from .stats import summarize

#: The paper's headline clock (Fig. 6, |S|=64): modelled MS/s at this
#: clock is ``189 / cycles_per_sample``.
PAPER_CLOCK_MHZ = 189.0

#: Telemetry-overhead budget as a ratio (pins the documented <5% claim).
TELEMETRY_OVERHEAD_BUDGET = 1.05


def _mdp(size: int = 16, actions: int = 8):
    from ..envs.gridworld import GridWorld

    return GridWorld.empty(size, actions).to_mdp()


def _config(**kw):
    from ..core.config import QTAccelConfig

    kw.setdefault("seed", 11)
    kw.setdefault("qmax_mode", "follow")
    return QTAccelConfig.qlearning(**kw)


@dataclass
class BenchCase:
    """One timed engine variant.

    ``setup(workload)`` returns a ``make`` factory; each call to
    ``make()`` builds a fresh engine (untimed — construction, session
    attachment and table allocation never pollute the hot-loop number)
    and returns ``(run, engine)`` where only ``run()`` is timed.
    ``cycles(engine)`` maps a finished engine to its cycle count for
    the cycle-accurate variants, enabling cycles/sample and the
    modelled MS/s at the paper's clock.
    """

    name: str
    title: str
    workload: int
    quick_workload: int
    setup: Callable[[int], Callable[[], tuple]]
    cycles: Optional[Callable[[object], int]] = None
    baseline: Optional[str] = None
    tags: tuple[str, ...] = field(default_factory=tuple)


# ---------------------------------------------------------------------- #
# Case definitions
# ---------------------------------------------------------------------- #


def _setup_functional(n: int):
    from ..core.functional import FunctionalSimulator

    mdp, cfg = _mdp(64), _config()

    def make():
        sim = FunctionalSimulator(mdp, cfg)
        return (lambda: sim.run(n)), sim

    return make


def _setup_pipeline(n: int):
    from ..core.pipeline import QTAccelPipeline

    mdp, cfg = _mdp(), _config()

    def make():
        pipe = QTAccelPipeline(mdp, cfg)
        return (lambda: pipe.run(n)), pipe

    return make


def _setup_pipeline_telemetry(n: int):
    from ..core.pipeline import QTAccelPipeline
    from ..telemetry.session import TelemetrySession

    mdp, cfg = _mdp(), _config()

    def make():
        session = TelemetrySession(trace=False)
        with session:
            pipe = QTAccelPipeline(mdp, cfg)
        return (lambda: pipe.run(n)), pipe

    return make


def _setup_pipeline_ecc(n: int):
    from ..core.pipeline import QTAccelPipeline

    mdp, cfg = _mdp(), _config(ecc_tables=True)

    def make():
        pipe = QTAccelPipeline(mdp, cfg)
        return (lambda: pipe.run(n)), pipe

    return make


def _setup_batch(n: int):
    from ..core.batch import BatchIndependentSimulator

    mdp, cfg = _mdp(), _config()
    agents = 32

    def make():
        sim = BatchIndependentSimulator(mdp, cfg, num_agents=agents)
        return (lambda: sim.run(n // agents)), sim

    return make


def _setup_multi_pipeline(n: int):
    from ..core.multi_pipeline import SharedPipelines

    mdp, cfg = _mdp(), _config()

    def make():
        shared = SharedPipelines(mdp, cfg)
        return (lambda: shared.run(n // 2)), shared

    return make


def _pipe_cycles(pipe) -> int:
    return pipe.stats.cycles


def _shared_cycles(shared) -> int:
    return shared.pipes[0].stats.cycles


#: The harness's case registry, keyed by snapshot case name.
BENCH_CASES: dict[str, BenchCase] = {
    case.name: case
    for case in (
        BenchCase(
            name="functional",
            title="functional simulator (fast path)",
            workload=20_000,
            quick_workload=2_000,
            setup=_setup_functional,
        ),
        BenchCase(
            name="pipeline",
            title="cycle-accurate pipeline (detached)",
            workload=4_000,
            quick_workload=400,
            setup=_setup_pipeline,
            cycles=_pipe_cycles,
        ),
        BenchCase(
            name="pipeline_telemetry",
            title="cycle-accurate pipeline + counters-only telemetry",
            workload=4_000,
            quick_workload=400,
            setup=_setup_pipeline_telemetry,
            cycles=_pipe_cycles,
            baseline="pipeline",
            tags=("overhead",),
        ),
        BenchCase(
            name="pipeline_ecc",
            title="cycle-accurate pipeline over SECDED tables",
            workload=2_000,
            quick_workload=200,
            setup=_setup_pipeline_ecc,
            cycles=_pipe_cycles,
            baseline="pipeline",
            tags=("overhead",),
        ),
        BenchCase(
            name="batch_fleet",
            title="vectorised lock-step fleet (32 agents)",
            workload=32_000,
            quick_workload=3_200,
            setup=_setup_batch,
        ),
        BenchCase(
            name="multi_pipeline",
            title="two table-sharing pipelines (Fig. 8)",
            workload=2_000,
            quick_workload=200,
            setup=_setup_multi_pipeline,
            cycles=_shared_cycles,
        ),
    )
}


# ---------------------------------------------------------------------- #
# Harness
# ---------------------------------------------------------------------- #


@dataclass
class BenchResult:
    """One case's measured outcome."""

    case: BenchCase
    workload: int
    seconds: list[float]
    cycles: Optional[int] = None

    def summary(self) -> dict:
        digest = summarize(self.seconds)
        med = digest["median"]
        out = {
            "title": self.case.title,
            "workload_samples": self.workload,
            "seconds": digest,
            "samples_per_sec": self.workload / med if med > 0 else None,
        }
        # Cycle-derived figures only exist for cycle-accurate engines;
        # non-cycle cases omit the keys entirely (snapshot schema 1.1 —
        # earlier snapshots carried explicit nulls, and the regression
        # sentinel tolerates both spellings).
        if self.cycles is not None and self.workload:
            cps = self.cycles / self.workload
            out["cycles_per_sample"] = cps
            out["modelled_msps_at_189mhz"] = PAPER_CLOCK_MHZ / cps
        return out


def run_bench(
    *,
    cases: Optional[Sequence[str]] = None,
    repeats: int = 7,
    warmup: int = 2,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
) -> dict[str, BenchResult]:
    """Run the harness and return ``{case name: BenchResult}``.

    Repeats are interleaved round-robin across all selected cases (see
    the module docstring for why).  ``clock`` is injectable so tests
    can drive the harness with a fake clock and assert the bookkeeping
    without real time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    names = list(cases) if cases is not None else list(BENCH_CASES)
    unknown = [n for n in names if n not in BENCH_CASES]
    if unknown:
        raise KeyError(
            f"unknown bench case(s) {unknown}; known: {sorted(BENCH_CASES)}"
        )
    # A variant's ratio is only meaningful against its interleaved
    # baseline, so pull missing baselines into the selection.
    for n in list(names):
        base = BENCH_CASES[n].baseline
        if base is not None and base not in names:
            names.append(base)

    plans: dict[str, Callable[[], tuple]] = {}
    results: dict[str, BenchResult] = {}
    for n in names:
        case = BENCH_CASES[n]
        workload = case.quick_workload if quick else case.workload
        plans[n] = case.setup(workload)
        results[n] = BenchResult(case=case, workload=workload, seconds=[])

    for n in names:
        make = plans[n]
        for _ in range(warmup):
            run, _engine = make()
            run()

    for _ in range(repeats):
        for n in names:
            run, engine = plans[n]()  # fresh engine, constructed untimed
            t0 = clock()
            run()
            elapsed = clock() - t0
            res = results[n]
            res.seconds.append(elapsed)
            if res.case.cycles is not None and res.cycles is None:
                res.cycles = res.case.cycles(engine)
    return results


def overhead_ratios(results: dict[str, BenchResult]) -> dict[str, dict]:
    """Variant/baseline overhead ratios for every measured pair.

    Repeat ``i`` of the variant and of its baseline come from the same
    interleaved round, so each pair is divided first (per-sample, since
    workloads may differ) and the ratio reported is the median across
    rounds — drift-cancelling where a ratio of medians is not.
    """
    from .stats import mad, median

    out: dict[str, dict] = {}
    for name, res in results.items():
        base = res.case.baseline
        if base is None or base not in results:
            continue
        base_res = results[base]
        pairs = [
            (v / res.workload) / (b / base_res.workload)
            for v, b in zip(res.seconds, base_res.seconds)
            if b > 0
        ]
        entry = {
            "variant": name,
            "baseline": base,
            "ratio": median(pairs) if pairs else None,
            "ratio_mad": mad(pairs) if pairs else None,
            "budget": None,
        }
        if name == "pipeline_telemetry":
            entry["budget"] = TELEMETRY_OVERHEAD_BUDGET
        out[name] = entry
    return out


def measure_stage_attribution(
    *,
    samples: int = 4_000,
    sample_every: int = 16,
) -> dict:
    """Run one pipeline with a :class:`StageTimer` and return its summary.

    Kept out of the timed cases: the sampled timestamps would otherwise
    leak into the throughput numbers they are meant to explain.
    """
    from ..core.pipeline import QTAccelPipeline

    mdp, cfg = _mdp(), _config()
    pipe = QTAccelPipeline(mdp, cfg)
    timer = StageTimer(sample_every).attach(pipe)
    pipe.run(samples)
    return timer.summary()
