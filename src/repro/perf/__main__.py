"""CLI for the performance observatory.

Usage::

    python -m repro.perf run                      # next BENCH_<n>.json here
    python -m repro.perf run --output out.json --repeats 9
    python -m repro.perf run --fleet              # + fleet throughput sweep
    python -m repro.perf run --fleet --workers 1,2  # + sharded worker sweep
    python -m repro.perf run --fleet --native     # + native fused-kernel sweep
    python -m repro.perf fleet --smoke --min-speedup 5
    python -m repro.perf fleet --backend native --min-speedup 3
    python -m repro.perf fleet --workers 2 --lanes 256 --min-speedup 2 --vs scalar
    python -m repro.perf serve --quick          # gateway saturation bench
    python -m repro.perf serve --quick --chaos  # + degraded (mid-recovery) bench
    python -m repro.perf compare BENCH_0.json BENCH_1.json
    python -m repro.perf report BENCH_1.json

``compare`` exits 0 when the sentinel passes, 1 on a regression, 2 on
usage errors — the contract the ``perf-regression`` CI job gates on.
"""

from __future__ import annotations

import argparse
import sys

from .bench import BENCH_CASES, measure_stage_attribution, overhead_ratios, run_bench
from .compare import DEFAULT_K, DEFAULT_REL_TOL, compare_snapshots, render_comparison
from .fleet import (
    LANE_COUNTS,
    RULE_NAMES,
    SMOKE_LANE_COUNTS,
    WORKER_COUNTS,
    check_min_speedup,
    check_native_speedup,
    check_rule_overhead,
    check_sharded_speedup,
    render_fleet_throughput,
    render_native_throughput,
    render_rule_throughput,
    render_sharded_throughput,
    run_fleet_throughput,
    run_native_throughput,
    run_rule_throughput,
    run_sharded_throughput,
)
from .serve import render_serve_throughput, run_serve_throughput
from .snapshot import build_snapshot, load_snapshot, next_bench_path, write_snapshot


def _cmd_run(args) -> int:
    cases = args.cases.split(",") if args.cases else None
    results = run_bench(
        cases=cases, repeats=args.repeats, warmup=args.warmup, quick=args.quick
    )
    stage = None
    if not args.no_stages:
        stage = measure_stage_attribution(
            samples=400 if args.quick else 4_000, sample_every=args.stage_every
        )
    fleet = None
    if args.fleet:
        fleet = run_fleet_throughput(
            lane_counts=SMOKE_LANE_COUNTS if args.quick else LANE_COUNTS,
            quick=args.quick,
        )
    sharded = None
    if args.workers:
        sharded = run_sharded_throughput(
            worker_counts=_parse_workers(args.workers),
            n_lanes=256 if args.quick else 4096,
            quick=args.quick,
        )
    rule_sweep = None
    if args.rules:
        rule_sweep = run_rule_throughput(quick=args.quick)
    native = None
    if args.native:
        native = run_native_throughput(
            lane_counts=SMOKE_LANE_COUNTS if args.quick else LANE_COUNTS,
            quick=args.quick,
        )
    serve = None
    if args.serve:
        serve = run_serve_throughput(quick=args.quick)
    snapshot = build_snapshot(
        results,
        config={"repeats": args.repeats, "warmup": args.warmup, "quick": args.quick},
        overheads=overhead_ratios(results),
        stage_attribution=stage,
        fleet_throughput=fleet,
        sharded_throughput=sharded,
        rule_throughput=rule_sweep,
        native_throughput=native,
        serve_throughput=serve,
    )
    path = args.output if args.output else next_bench_path(".")
    write_snapshot(snapshot, path)
    print(render_snapshot(snapshot))
    print(f"\nsnapshot written to {path}")
    return 0


def _parse_workers(spec: str) -> list[int]:
    try:
        counts = [int(tok) for tok in spec.split(",") if tok.strip()]
    except ValueError:
        raise KeyError(f"--workers: expected comma-separated ints, got {spec!r}")
    if not counts:
        raise KeyError(f"--workers: expected comma-separated ints, got {spec!r}")
    return counts


def _cmd_fleet(args) -> int:
    sharded = bool(args.workers)
    native = args.backend == "native"
    if native and (args.rules or sharded):
        raise KeyError("--backend native cannot combine with --rules/--workers")
    if native:
        record = run_native_throughput(
            lane_counts=SMOKE_LANE_COUNTS if args.smoke else LANE_COUNTS,
            repeats=args.repeats,
            quick=args.smoke,
            kernel=args.kernel,
        )
        print(render_native_throughput(record))
    elif args.rules:
        record = run_rule_throughput(
            rules=RULE_NAMES if args.rules == "all" else args.rules.split(","),
            n_lanes=min(args.lanes, 256),
            repeats=args.repeats,
            quick=args.smoke,
        )
        print(render_rule_throughput(record))
    elif sharded:
        record = run_sharded_throughput(
            worker_counts=_parse_workers(args.workers),
            n_lanes=args.lanes,
            repeats=args.repeats,
            quick=args.smoke,
        )
        print(render_sharded_throughput(record))
    else:
        record = run_fleet_throughput(
            lane_counts=SMOKE_LANE_COUNTS if args.smoke else LANE_COUNTS,
            repeats=args.repeats,
            quick=args.smoke,
        )
        print(render_fleet_throughput(record))
    if args.output:
        import json

        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nsweep written to {args.output}")
    if args.rules and args.max_rule_overhead is not None:
        ok, message = check_rule_overhead(record, args.max_rule_overhead)
        print(message)
        return 0 if ok else 1
    if args.min_speedup is not None and not args.rules:
        if native:
            ok, message = check_native_speedup(record, args.min_speedup)
        elif sharded:
            ok, message = check_sharded_speedup(record, args.min_speedup, vs=args.vs)
        else:
            ok, message = check_min_speedup(record, args.min_speedup)
        print(message)
        return 0 if ok else 1
    return 0


def _cmd_serve(args) -> int:
    record = run_serve_throughput(
        engine=args.engine,
        lanes=args.lanes,
        concurrency=args.concurrency,
        sessions=args.sessions,
        transitions_per_session=args.transitions,
        num_workers=args.workers,
        quick=args.quick,
    )
    print(render_serve_throughput(record))
    if record.get("errors"):
        return 1
    degraded = None
    if args.chaos or args.trace:
        # Only the chaos run is traced: the healthy serve_throughput
        # record must stay comparable against untraced baselines, and
        # tracing cost has its own dedicated measurement below.
        degraded = run_serve_throughput(
            engine="sharded",
            lanes=args.lanes,
            concurrency=args.concurrency,
            sessions=args.sessions,
            transitions_per_session=args.transitions,
            num_workers=args.workers,
            quick=args.quick,
            chaos=True,
            trace_path=args.trace,
            recorder_dir=args.recorder_dir,
        )
        print()
        print(render_serve_throughput(degraded))
        if degraded.get("errors"):
            return 1
    overheads = None
    if not args.no_overhead:
        from ..obs.overhead import measure_serve_tracing_overhead

        entry = measure_serve_tracing_overhead(quick=args.quick)
        overheads = {"serve_tracing": entry}
        ratio, budget = entry.get("ratio"), entry.get("budget")
        print(
            f"\ntracing overhead: ratio {ratio:.4f} vs serve_untraced "
            f"(budget {budget}, 1-in-{entry.get('sample_stride')} sampling)"
        )
    snapshot = build_snapshot(
        {},
        source="serve-bench",
        config={"quick": args.quick},
        serve_throughput=record,
        degraded_throughput=degraded,
        overheads=overheads,
    )
    path = args.output if args.output else next_bench_path(".")
    write_snapshot(snapshot, path)
    print(f"\nsnapshot written to {path}")
    return 0


def _cmd_compare(args) -> int:
    try:
        base = load_snapshot(args.base)
        new = load_snapshot(args.new)
    except (OSError, ValueError) as exc:
        print(f"cannot load snapshot: {exc}", file=sys.stderr)
        return 2
    result = compare_snapshots(
        base, new, rel_tol=args.rel_tol, k=args.k, force_absolute=args.absolute
    )
    print(render_comparison(result))
    return 0 if result.ok else 1


def _cmd_report(args) -> int:
    try:
        snapshot = load_snapshot(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot load snapshot: {exc}", file=sys.stderr)
        return 2
    print(render_snapshot(snapshot))
    return 0


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def render_snapshot(snapshot: dict) -> str:
    """Human-readable rendering of one snapshot."""
    out = ["== bench snapshot =="]
    out.append(f"schema: {snapshot.get('schema')}   source: {snapshot.get('source')}")
    machine = snapshot.get("machine") or {}
    out.append(
        "machine: "
        + " ".join(
            f"{k}={machine.get(k)}"
            for k in ("machine", "python", "numpy", "cpu_count")
        )
    )
    header = f"{'case':26s} {'median_s':>10s} {'mad_s':>10s} {'samp/s':>12s} {'cyc/samp':>9s} {'MS/s@189':>9s}"
    out.append(header)
    out.append("-" * len(header))
    for name, case in sorted((snapshot.get("cases") or {}).items()):
        sec = case.get("seconds") or {}
        out.append(
            f"{name:26s} {_fmt(sec.get('median')):>10s} {_fmt(sec.get('mad')):>10s} "
            f"{_fmt(case.get('samples_per_sec')):>12s} "
            f"{_fmt(case.get('cycles_per_sample')):>9s} "
            f"{_fmt(case.get('modelled_msps_at_189mhz')):>9s}"
        )
    overheads = snapshot.get("overheads") or {}
    if overheads:
        out.append("\noverheads (variant / baseline, per-sample):")
        for name, entry in sorted(overheads.items()):
            budget = entry.get("budget")
            tail = f" (budget {_fmt(budget)})" if budget is not None else " (informational)"
            out.append(
                f"  {name}: {_fmt(entry.get('ratio'))} vs {entry.get('baseline')}{tail}"
            )
    fleet = snapshot.get("fleet_throughput")
    if fleet:
        out.append("")
        out.append(render_fleet_throughput(fleet))
    sharded = snapshot.get("sharded_throughput")
    if sharded:
        out.append("")
        out.append(render_sharded_throughput(sharded))
    rule_sweep = snapshot.get("rule_throughput")
    if rule_sweep:
        out.append("")
        out.append(render_rule_throughput(rule_sweep))
    native = snapshot.get("native_throughput")
    if native:
        out.append("")
        out.append(render_native_throughput(native))
    serve = snapshot.get("serve_throughput")
    if serve:
        out.append("")
        out.append(render_serve_throughput(serve))
    degraded = snapshot.get("degraded_throughput")
    if degraded:
        out.append("")
        out.append(render_serve_throughput(degraded))
    stage = snapshot.get("stage_attribution")
    if stage:
        fr = stage.get("fractions") or {}
        out.append(
            f"\nstage wall-time attribution (every {stage.get('sample_every')} cycles, "
            f"{stage.get('sampled_cycles')} sampled): "
            + "  ".join(f"{s}={_fmt(fr.get(s))}" for s in ("S1", "S2", "S3", "S4"))
        )
    device = snapshot.get("device")
    if device:
        out.append("\ndevice model: " + "  ".join(f"{k}={_fmt(v)}" for k, v in sorted(device.items())))
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="QTAccel performance observatory: bench, compare, report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the bench harness and write a snapshot")
    p_run.add_argument(
        "--output", metavar="PATH", help="snapshot path (default: next BENCH_<n>.json in .)"
    )
    p_run.add_argument("--repeats", type=int, default=7, help="timed repeats per case")
    p_run.add_argument("--warmup", type=int, default=2, help="untimed warmup runs per case")
    p_run.add_argument(
        "--quick", action="store_true", help="tiny workloads (CI smoke / tests)"
    )
    p_run.add_argument(
        "--cases",
        metavar="A,B,...",
        help=f"comma-separated subset of: {','.join(sorted(BENCH_CASES))}",
    )
    p_run.add_argument(
        "--stage-every",
        type=int,
        default=16,
        metavar="N",
        help="stage-attribution sampling period in cycles",
    )
    p_run.add_argument(
        "--no-stages", action="store_true", help="skip the stage-attribution pass"
    )
    p_run.add_argument(
        "--fleet",
        action="store_true",
        help="also run the scalar-vs-vectorized fleet throughput sweep "
        "(recorded under the snapshot's fleet_throughput key)",
    )
    p_run.add_argument(
        "--workers",
        metavar="A,B,...",
        help="also run the sharded worker-count sweep at these worker counts "
        "(recorded under the snapshot's sharded_throughput key)",
    )
    p_run.add_argument(
        "--rules",
        action="store_true",
        help="also run the per-update-rule vectorized throughput sweep "
        "(recorded under the snapshot's rule_throughput key)",
    )
    p_run.add_argument(
        "--native",
        action="store_true",
        help="also run the native fused-kernel sweep "
        "(recorded under the snapshot's native_throughput key)",
    )
    p_run.add_argument(
        "--serve",
        action="store_true",
        help="also run the session-gateway saturation bench "
        "(recorded under the snapshot's serve_throughput key)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser(
        "serve", help="session-gateway saturation bench (sessions/sec, act p99)"
    )
    p_serve.add_argument(
        "--engine", default="vectorized", choices=("vectorized", "scalar", "sharded")
    )
    p_serve.add_argument("--lanes", type=int, default=32)
    p_serve.add_argument("--concurrency", type=int, default=8, help="client threads")
    p_serve.add_argument("--sessions", type=int, default=48, help="session workloads")
    p_serve.add_argument(
        "--transitions", type=int, default=256, help="learns per session"
    )
    p_serve.add_argument("--workers", type=int, default=2, help="sharded workers")
    p_serve.add_argument(
        "--quick", action="store_true", help="tiny load (CI smoke / tests)"
    )
    p_serve.add_argument(
        "--chaos",
        action="store_true",
        help="also run the degraded bench: the same load on a sharded "
        "backend with worker 0 SIGSTOP'd, timed through the watchdog's "
        "kill/restart/replay recovery (recorded under degraded_throughput)",
    )
    p_serve.add_argument(
        "--trace",
        metavar="PATH",
        help="run the chaos bench fully traced (sample 1.0) and write the "
        "merged client/gateway/session/shard timeline as a Chrome "
        "trace_event file at PATH (implies --chaos)",
    )
    p_serve.add_argument(
        "--recorder-dir",
        metavar="DIR",
        help="attach a flight recorder to the traced chaos bench and dump "
        "it (events + spans) under DIR",
    )
    p_serve.add_argument(
        "--no-overhead",
        action="store_true",
        help="skip the tracing-overhead measurement (overheads.serve_tracing)",
    )
    p_serve.add_argument(
        "--output", metavar="PATH", help="snapshot path (default: next BENCH_<n>.json in .)"
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet", help="scalar vs vectorized fleet throughput sweep"
    )
    p_fleet.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI smoke: tiny workloads, lane counts {SMOKE_LANE_COUNTS}",
    )
    p_fleet.add_argument(
        "--repeats", type=int, default=3, help="timed repeats per lane count"
    )
    p_fleet.add_argument(
        "--min-speedup",
        type=float,
        metavar="X",
        help="exit 1 unless the largest lane count (or worker count, with "
        "--workers) reaches X x speedup",
    )
    p_fleet.add_argument(
        "--backend",
        choices=("auto", "native"),
        default="auto",
        help="'native' runs the fused-kernel sweep (native vs vectorized) "
        "instead of the scalar-vs-vectorized sweep",
    )
    p_fleet.add_argument(
        "--kernel",
        choices=("auto", "numba", "cc", "python"),
        default=None,
        help="with --backend native: pin a kernel tier (default: "
        "QTACCEL_NATIVE_KERNEL env, then numba, then cc)",
    )
    p_fleet.add_argument(
        "--workers",
        metavar="A,B,...",
        help="run the sharded worker-count sweep instead (e.g. 1,2,4; "
        f"full-run default ladder is {WORKER_COUNTS})",
    )
    p_fleet.add_argument(
        "--lanes",
        type=int,
        default=4096,
        metavar="N",
        help="lane count for the sharded sweep (default 4096)",
    )
    p_fleet.add_argument(
        "--vs",
        choices=("scalar", "vectorized"),
        default="scalar",
        help="which baseline the sharded --min-speedup gate compares against "
        "(scalar is machine-portable; vectorized needs a multi-core host)",
    )
    p_fleet.add_argument(
        "--rules",
        metavar="A,B,...|all",
        help="run the per-update-rule vectorized throughput sweep instead "
        f"(registered rules: {','.join(RULE_NAMES)})",
    )
    p_fleet.add_argument(
        "--max-rule-overhead",
        type=float,
        metavar="X",
        help="with --rules: exit 1 if any rule's per-update overhead vs "
        "plain Q-Learning exceeds X",
    )
    p_fleet.add_argument("--output", metavar="PATH", help="write the sweep json here")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_cmp = sub.add_parser("compare", help="regression sentinel over two snapshots")
    p_cmp.add_argument("base", help="baseline snapshot (e.g. BENCH_0.json)")
    p_cmp.add_argument("new", help="candidate snapshot")
    p_cmp.add_argument(
        "--rel-tol",
        type=float,
        default=DEFAULT_REL_TOL,
        help="relative slowdown tolerated before failing",
    )
    p_cmp.add_argument(
        "--k", type=float, default=DEFAULT_K, help="MAD multiplier in the threshold"
    )
    p_cmp.add_argument(
        "--absolute",
        action="store_true",
        help="gate wall-clock even across differing machine fingerprints",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_rep = sub.add_parser("report", help="render one snapshot as text")
    p_rep.add_argument("path", help="snapshot .json")
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except BrokenPipeError:  # |head and friends — not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
