"""Schema-versioned ``BENCH_<n>.json`` performance snapshots.

A snapshot is the unit of the repo's bench trajectory: one
machine-readable record of how fast every engine ran at one commit,
comparable against its neighbours by :mod:`repro.perf.compare`.
``BENCH_0.json`` at the repo root is the committed baseline; the
harness (``python -m repro.perf run``), the pytest-benchmark suite
(``benchmarks/conftest.py``) and the experiments runner
(``--telemetry DIR``) all emit the same schema so every measurement
feeds one trajectory.

Schema (``qtaccel-bench/1``)::

    {
      "schema": "qtaccel-bench/1",
      "source": "harness" | "pytest-benchmark" | "experiment:<id>",
      "machine": {platform, python, numpy, cpu_count, ...},
      "config": {"repeats": .., "warmup": .., "quick": ..},
      "cases": {"<name>": {"seconds": {median, mad, ci, ...},
                            "samples_per_sec": ..,
                            "cycles_per_sample": ..,       # cycle-accurate
                            "modelled_msps_at_189mhz": ..}},  # cases only
      "overheads": {"<variant>": {"baseline", "ratio", "budget"}},
      "stage_attribution": {"sample_every", "sampled_cycles",
                             "seconds", "fractions"},
      "fleet_throughput": {"lane_counts", "repeats",         # optional
                            "points": {"<n_lanes>": {"scalar",
                                       "vectorized", "speedup"}}},
      "sharded_throughput": {"n_lanes", "worker_counts",     # optional
                              "points": {"<workers>": {"sharded",
                                         "vectorized", "speedup_*"}}},
      "native_throughput": {"lane_counts", "kernel",         # optional
                             "points": {"<n_lanes>": {"native",
                                        "vectorized",
                                        "speedup_vs_vectorized"}}},
      "serve_throughput": {"engine", "lanes", "concurrency", # optional
                            "sessions_per_sec", "transitions_per_sec",
                            "act_latency_ms": {"p50", "p99", ...}},
      "degraded_throughput": {...same shape, "chaos": true,   # optional
                               "hangs", "restarts"}  # serve bench re-run
                               # through a hung-worker recovery
    }

Cases run on engines with no cycle notion (functional, the fleets)
**omit** ``cycles_per_sample``/``modelled_msps_at_189mhz``; snapshots
written before schema revision 1.1 carried explicit nulls instead, and
:mod:`repro.perf.compare` accepts both spellings.

Absolute ``seconds`` are only comparable between snapshots whose
machine fingerprints match; ``cycles_per_sample`` (deterministic) and
the overhead ``ratio``s (same-machine relative measures) compare
across any pair — the sentinel enforces exactly that split.
"""

from __future__ import annotations

import json
import os
import platform
import re
from pathlib import Path
from typing import Optional

#: Current snapshot schema identifier; bump on breaking layout changes.
SCHEMA = "qtaccel-bench/1"

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def machine_fingerprint() -> dict:
    """Where this snapshot was measured (for comparability checks)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
    }


def fingerprints_match(a: Optional[dict], b: Optional[dict]) -> bool:
    """Are two snapshots' timings directly comparable?

    Anything that moves the interpreter's speed — machine, Python
    version/implementation, numpy — must agree; ``platform`` string
    noise (kernel patch level) is ignored on purpose.
    """
    if not a or not b:
        return False
    keys = ("machine", "python", "implementation", "numpy", "cpu_count")
    return all(a.get(k) == b.get(k) for k in keys)


def build_snapshot(
    results,
    *,
    source: str = "harness",
    config: Optional[dict] = None,
    overheads: Optional[dict] = None,
    stage_attribution: Optional[dict] = None,
    fleet_throughput: Optional[dict] = None,
    sharded_throughput: Optional[dict] = None,
    rule_throughput: Optional[dict] = None,
    native_throughput: Optional[dict] = None,
    serve_throughput: Optional[dict] = None,
    degraded_throughput: Optional[dict] = None,
) -> dict:
    """Assemble a schema-versioned snapshot from harness results."""
    snap = {
        "schema": SCHEMA,
        "source": source,
        "machine": machine_fingerprint(),
        "config": config or {},
        "cases": {name: res.summary() for name, res in sorted(results.items())},
        "overheads": overheads or {},
        "stage_attribution": stage_attribution,
    }
    if fleet_throughput is not None:
        snap["fleet_throughput"] = fleet_throughput
    if sharded_throughput is not None:
        snap["sharded_throughput"] = sharded_throughput
    if rule_throughput is not None:
        snap["rule_throughput"] = rule_throughput
    if native_throughput is not None:
        snap["native_throughput"] = native_throughput
    if serve_throughput is not None:
        snap["serve_throughput"] = serve_throughput
    if degraded_throughput is not None:
        snap["degraded_throughput"] = degraded_throughput
    return snap


def snapshot_from_profile(profile: dict, *, source: str = "experiment") -> dict:
    """Derive a snapshot from a telemetry profile's deterministic facts.

    An experiment run under ``--telemetry`` has no repeat timings, but
    its cycle counts are exact; the snapshot carries cycles/sample and
    the modelled MS/s per attached pipeline (plus the device-model join
    when the profile recorded one), with ``seconds`` null so the
    sentinel knows not to gate wall-clock on it.
    """
    from .bench import PAPER_CLOCK_MHZ

    cases: dict = {}
    for name, pipe in sorted(profile.get("pipes", {}).items()):
        stats = pipe.get("stats", {})
        retired = stats.get("retired", 0)
        cycles = stats.get("cycles", 0)
        cps = (cycles / retired) if retired else None
        entry = {
            "title": f"profiled pipeline {name}",
            "workload_samples": retired,
            "seconds": None,
            "samples_per_sec": None,
        }
        if cps:
            entry["cycles_per_sample"] = cps
            entry["modelled_msps_at_189mhz"] = PAPER_CLOCK_MHZ / cps
        cases[name] = entry
    snap = {
        "schema": SCHEMA,
        "source": source,
        "machine": machine_fingerprint(),
        "config": {},
        "cases": cases,
        "overheads": {},
        "stage_attribution": None,
    }
    device = profile.get("device")
    if device:
        snap["device"] = device
    return snap


def snapshot_from_pytest_benchmarks(benchmarks, *, source: str = "pytest-benchmark") -> dict:
    """Build a snapshot from pytest-benchmark's per-test records.

    Accepts the session's benchmark fixtures; tests that only ran for
    their side effects (``--benchmark-disable``) contribute their
    ``extra_info`` (cycles/sample, modelled MS/s) with null timings.
    """
    cases: dict = {}
    for bm in benchmarks:
        name = getattr(bm, "name", None) or getattr(bm, "fullname", "benchmark")
        entry: dict = {
            "title": getattr(bm, "fullname", name),
            "workload_samples": None,
            "seconds": None,
            "samples_per_sec": None,
        }
        # ``bm`` is pytest-benchmark's Metadata; ``bm.stats`` is its Stats
        # (older layouts nest one level deeper, hence the second hop).
        inner = getattr(bm, "stats", None)
        if inner is not None and not hasattr(inner, "data"):
            inner = getattr(inner, "stats", None)
        if inner is not None and getattr(inner, "data", None):
            entry["seconds"] = {
                "repeats": len(inner.data),
                "median": inner.median,
                "mad": None,
                "mean": inner.mean,
                "min": inner.min,
                "max": inner.max,
                "ci": None,
                "ci_confidence": None,
            }
        extra = dict(getattr(bm, "extra_info", {}) or {})
        if "cycles_per_sample" in extra:
            entry["cycles_per_sample"] = extra["cycles_per_sample"]
        if "modelled_msps_at_189MHz" in extra:
            entry["modelled_msps_at_189mhz"] = extra["modelled_msps_at_189MHz"]
        if extra:
            entry["extra_info"] = extra
        if entry["seconds"] is None and not extra:
            continue  # nothing measurable from this test
        cases[_case_key(name)] = entry
    return {
        "schema": SCHEMA,
        "source": source,
        "machine": machine_fingerprint(),
        "config": {},
        "cases": cases,
        "overheads": {},
        "stage_attribution": None,
    }


def _case_key(name: str) -> str:
    """pytest node name -> stable snapshot case key."""
    return re.sub(r"[^A-Za-z0-9_.\[\]=-]", "_", name)


# ---------------------------------------------------------------------- #
# I/O
# ---------------------------------------------------------------------- #


def write_snapshot(snapshot: dict, path) -> Path:
    """Serialise ``snapshot`` (validating its schema tag) to ``path``."""
    if snapshot.get("schema") != SCHEMA:
        raise ValueError(
            f"snapshot schema {snapshot.get('schema')!r} != {SCHEMA!r}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_snapshot(path) -> dict:
    """Read and validate one snapshot."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} snapshot "
            f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
        )
    if not isinstance(data.get("cases"), dict):
        raise ValueError(f"{path}: snapshot has no 'cases' mapping")
    return data


def next_bench_path(directory) -> Path:
    """The next free ``BENCH_<n>.json`` in ``directory`` (n = max + 1)."""
    directory = Path(directory)
    highest = -1
    if directory.is_dir():
        for entry in directory.iterdir():
            m = _BENCH_RE.match(entry.name)
            if m:
                highest = max(highest, int(m.group(1)))
    return directory / f"BENCH_{highest + 1}.json"
