"""Live metrics export: OpenMetrics text and periodic emitters.

Two consumers, one registry:

* **Scrapers** — :func:`render_openmetrics` renders a
  :class:`~repro.telemetry.counters.CounterRegistry` as
  OpenMetrics/Prometheus exposition text.  Instruments keep their
  dotted names as a ``name`` label on three metric families
  (``<ns>_counter_total``, ``<ns>_gauge``, ``<ns>_histogram``) so a
  thousand pipeline counters don't mint a thousand metric families;
  histogram buckets are converted to the format's cumulative ``le``
  form with the mandatory ``+Inf`` bucket.
* **Tails** — :class:`JsonlEmitter` appends one JSON object per emit
  (wall-time, sequence number, flat counters) so a fleet run leaves a
  scrub-friendly time series; :class:`OpenMetricsTextfileEmitter`
  atomically rewrites a textfile for the node-exporter
  textfile-collector pattern.

Emitters hook into a :class:`~repro.telemetry.session.TelemetrySession`
via ``session.add_emitter(...)``; long-running engines (the shared and
batch fleets, the fleet supervisor) pulse their session inside their
run loops, and each emitter rate-limits itself (``interval_s``), so a
mid-flight scrape costs nothing when no emitter is registered and a
clock check when one is.

:func:`validate_openmetrics` is the conformance checker the golden
fixture test and the live fleet-run test share.
"""

from __future__ import annotations

import json
import math
import os
import re
import time
from pathlib import Path
from typing import Optional

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Sample line of the exposition format (after comment lines are set
#: aside): name, optional label set, value, optional timestamp.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\",?)*)\})?"
    r" (?P<value>[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))"
    r"(?: (?P<ts>[0-9]+(?:\.[0-9]+)?))?$"
)

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped", "info", "stateset")


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary string into a legal metric name.

    Dots and other illegal characters become underscores; a leading
    digit gets a guard underscore.  Idempotent on already-legal names.
    """
    if _NAME_OK.match(name):
        return name
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(v) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    f = float(v)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    for key in pairs:
        if not _LABEL_OK.match(key):
            raise ValueError(f"illegal label name {key!r}")
    inner = ",".join(f'{k}="{escape_label_value(str(v))}"' for k, v in pairs.items())
    return "{" + inner + "}"


def render_openmetrics(
    registry,
    *,
    namespace: str = "qtaccel",
    labels: Optional[dict[str, str]] = None,
    eof: bool = True,
) -> str:
    """Render every instrument in ``registry`` as exposition text.

    ``labels`` are attached to every sample (e.g. ``{"run": "fleet3"}``)
    in addition to the per-instrument ``name`` label.  ``eof=False``
    omits the terminating ``# EOF`` for embedding in a larger page.
    """
    from ..telemetry.counters import Counter, Gauge, Histogram

    ns = sanitize_metric_name(namespace)
    extra = dict(labels or {})
    counters: list[tuple[str, object]] = []
    gauges: list[tuple[str, object]] = []
    histograms: list[tuple[str, object]] = []
    for inst in registry.instruments():
        if isinstance(inst, Histogram):
            histograms.append((inst.name, inst))
        elif isinstance(inst, Gauge):
            gauges.append((inst.name, inst))
        elif isinstance(inst, Counter):
            counters.append((inst.name, inst))

    lines: list[str] = []
    if counters:
        metric = f"{ns}_counter"
        lines.append(f"# HELP {metric} QTAccel telemetry counters by dotted name.")
        lines.append(f"# TYPE {metric} counter")
        for name, inst in sorted(counters):
            lab = _labels({"name": name, **extra})
            lines.append(f"{metric}_total{lab} {_fmt_value(inst.value)}")
    if gauges:
        metric = f"{ns}_gauge"
        lines.append(f"# HELP {metric} QTAccel telemetry gauges by dotted name.")
        lines.append(f"# TYPE {metric} gauge")
        for name, inst in sorted(gauges):
            lab = _labels({"name": name, **extra})
            lines.append(f"{metric}{lab} {_fmt_value(inst.value)}")
    if histograms:
        metric = f"{ns}_histogram"
        lines.append(f"# HELP {metric} QTAccel telemetry histograms by dotted name.")
        lines.append(f"# TYPE {metric} histogram")
        for name, inst in sorted(histograms):
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.buckets):
                cumulative += count
                lab = _labels({"name": name, **extra, "le": _fmt_value(bound)})
                lines.append(f"{metric}_bucket{lab} {cumulative}")
            lab = _labels({"name": name, **extra, "le": "+Inf"})
            lines.append(f"{metric}_bucket{lab} {inst.count}")
            lab = _labels({"name": name, **extra})
            lines.append(f"{metric}_sum{lab} {_fmt_value(inst.total)}")
            lines.append(f"{metric}_count{lab} {inst.count}")
    if eof:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# Conformance checking
# ---------------------------------------------------------------------- #


def validate_openmetrics(text: str) -> list[str]:
    """Check exposition text for format conformance; return error list.

    Enforces the rules the golden-fixture test relies on: legal sample
    syntax, ``# TYPE`` declared before a family's samples, one TYPE per
    family, counter samples carrying the ``_total`` suffix, histogram
    buckets cumulative with a ``+Inf`` bucket equal to ``_count``, and
    the terminating ``# EOF``.  An empty list means conformant.
    """
    errors: list[str] = []
    if not text.endswith("\n"):
        errors.append("text must end with a newline")
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        errors.append("missing terminating '# EOF' line")
    types: dict[str, str] = {}
    hist_state: dict[tuple[str, str], dict] = {}
    for i, line in enumerate(lines, 1):
        if not line:
            errors.append(f"line {i}: blank line")
            continue
        if line == "# EOF":
            if i != len(lines):
                errors.append(f"line {i}: '# EOF' before end of text")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE", "UNIT"):
                errors.append(f"line {i}: malformed comment {line!r}")
                continue
            _, kind, family = parts[0], parts[1], parts[2]
            if not _NAME_OK.match(family):
                errors.append(f"line {i}: illegal metric family name {family!r}")
            if kind == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    errors.append(f"line {i}: unknown metric type in {line!r}")
                elif family in types:
                    errors.append(f"line {i}: duplicate TYPE for {family}")
                else:
                    types[family] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {i}: malformed sample {line!r}")
            continue
        name = m.group("name")
        family, suffix = _family_of(name, types)
        if family is None:
            errors.append(f"line {i}: sample {name!r} has no preceding TYPE")
            continue
        mtype = types[family]
        label_str = m.group("labels") or ""
        if mtype == "counter" and suffix not in ("_total", "_created"):
            errors.append(f"line {i}: counter sample {name!r} must end in _total")
        if mtype == "histogram":
            key = (family, _strip_le(label_str))
            state = hist_state.setdefault(
                key, {"last_bucket": None, "saw_inf": False, "count": None}
            )
            if suffix == "_bucket":
                le = _le_value(label_str)
                if le is None:
                    errors.append(f"line {i}: histogram bucket without 'le' label")
                    continue
                value = float(m.group("value"))
                last = state["last_bucket"]
                if last is not None and value < last:
                    errors.append(f"line {i}: histogram buckets not cumulative")
                state["last_bucket"] = value
                if le == "+Inf":
                    state["saw_inf"] = True
                    state["inf_value"] = value
            elif suffix == "_count":
                state["count"] = float(m.group("value"))
    for (family, labels), state in hist_state.items():
        where = f"{family}{{{labels}}}" if labels else family
        if not state["saw_inf"]:
            errors.append(f"{where}: histogram missing '+Inf' bucket")
        elif state["count"] is not None and state.get("inf_value") != state["count"]:
            errors.append(f"{where}: '+Inf' bucket != _count")
    return errors


def _family_of(name: str, types: dict[str, str]) -> tuple[Optional[str], str]:
    """Resolve a sample name to its declared family and suffix."""
    for suffix in ("_total", "_created", "_bucket", "_sum", "_count", ""):
        base = name[: -len(suffix)] if suffix else name
        if suffix and not name.endswith(suffix):
            continue
        if base in types:
            return base, suffix
    return None, ""


def _strip_le(label_str: str) -> str:
    return ",".join(
        part for part in label_str.split(",") if part and not part.startswith("le=")
    )


def _le_value(label_str: str) -> Optional[str]:
    m = re.search(r'le="((?:\\.|[^"\\])*)"', label_str)
    return m.group(1) if m else None


# ---------------------------------------------------------------------- #
# Periodic emitters
# ---------------------------------------------------------------------- #


class _PeriodicEmitter:
    """Shared rate limiting: emit at most once per ``interval_s``.

    ``interval_s=0`` emits on every pulse — what the tests use for
    deterministic line counts.  ``clock`` is injectable for testing.
    """

    def __init__(self, path, *, interval_s: float = 1.0, clock=time.monotonic):
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.path = Path(path)
        self.interval_s = interval_s
        self.emits = 0
        self._clock = clock
        self._last: Optional[float] = None

    def maybe_emit(self, session) -> bool:
        now = self._clock()
        if self._last is not None and now - self._last < self.interval_s:
            return False
        self._last = now
        self.emit(session)
        return True

    def emit(self, session) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class JsonlEmitter(_PeriodicEmitter):
    """Append one JSON object per emit: a scrapeable counter time series.

    Each line carries the emit sequence number, a wall-clock timestamp,
    and the registry's flat counter snapshot, so a long fleet run can be
    tailed (``tail -f run.metrics.jsonl | jq``) or loaded as a frame per
    line after the fact.
    """

    def emit(self, session) -> None:
        record = {
            "seq": self.emits,
            "time_unix": time.time(),
            "counters": session.registry.as_dict(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.emits += 1


class OpenMetricsTextfileEmitter(_PeriodicEmitter):
    """Atomically rewrite an OpenMetrics textfile on each emit.

    The node-exporter textfile-collector pattern: a scraper reads the
    file at its own cadence and always sees a complete exposition
    (write to ``<path>.tmp``, then rename).
    """

    def __init__(
        self,
        path,
        *,
        interval_s: float = 1.0,
        namespace: str = "qtaccel",
        labels: Optional[dict[str, str]] = None,
        clock=time.monotonic,
    ):
        super().__init__(path, interval_s=interval_s, clock=clock)
        self.namespace = namespace
        self.labels = labels

    def emit(self, session) -> None:
        text = render_openmetrics(
            session.registry, namespace=self.namespace, labels=self.labels
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, self.path)
        self.emits += 1
