"""Robust summaries for small wall-clock sample sets.

Bench repeats are few (5-10) and wall-clock noise is heavy-tailed
(GC pauses, frequency scaling, a neighbouring CI job), so the harness
summarises with order statistics — median and MAD — rather than mean
and stddev, and attaches a bootstrap confidence interval so a snapshot
records how trustworthy its own central estimate is.

Everything here is deterministic: the bootstrap resamples with a fixed
xorshift stream, so re-summarising the same samples reproduces the
same interval bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

#: Resamples drawn for the bootstrap interval.  Enough for a stable
#: 90% interval over <=16 repeats; cheap either way.
BOOTSTRAP_RESAMPLES = 512


def median(samples: Sequence[float]) -> float:
    """Plain median (mean of the middle pair for even counts)."""
    if not samples:
        raise ValueError("median of an empty sample set")
    s = sorted(samples)
    n = len(s)
    mid = n // 2
    if n % 2:
        return float(s[mid])
    return (s[mid - 1] + s[mid]) / 2.0


def mad(samples: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the median).

    Reported raw (no 1.4826 normal-consistency factor): the sentinel's
    ``k * MAD`` threshold is calibrated against the raw statistic.
    """
    if not samples:
        raise ValueError("mad of an empty sample set")
    c = median(samples) if center is None else center
    return median([abs(x - c) for x in samples])


class _Xorshift:
    """Tiny deterministic PRNG so the bootstrap needs no global seeding."""

    __slots__ = ("state",)

    def __init__(self, seed: int):
        self.state = (seed or 0x9E3779B9) & 0xFFFFFFFF

    def next_below(self, n: int) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x % n


def bootstrap_ci(
    samples: Sequence[float],
    *,
    confidence: float = 0.90,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = 0x51AB,
) -> tuple[float, float]:
    """Percentile bootstrap interval for the median of ``samples``."""
    if not samples:
        raise ValueError("bootstrap over an empty sample set")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(samples)
    if n == 1:
        return (float(samples[0]), float(samples[0]))
    rng = _Xorshift(seed)
    medians = []
    for _ in range(resamples):
        draw = [samples[rng.next_below(n)] for _ in range(n)]
        medians.append(median(draw))
    medians.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = medians[int(alpha * (resamples - 1))]
    hi = medians[int((1.0 - alpha) * (resamples - 1))]
    return (float(lo), float(hi))


def summarize(samples: Sequence[float], *, confidence: float = 0.90) -> dict:
    """JSON-ready robust digest of one case's repeat timings."""
    m = median(samples)
    lo, hi = bootstrap_ci(samples, confidence=confidence)
    return {
        "repeats": len(samples),
        "median": m,
        "mad": mad(samples, m),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
        "ci": [lo, hi],
        "ci_confidence": confidence,
    }
