"""Serve-path saturation bench: sessions/sec and action-query latency.

The gateway (:mod:`repro.serve`) turns fleet lanes into a multi-tenant
service; this module measures what that service sustains.  A gateway is
booted in-process on an ephemeral port, ``concurrency`` client threads
drain a shared queue of ``sessions`` session workloads (open → stream
``transitions_per_session`` learns, with an ``act`` query every
``act_every`` learns → read the table → close), and the record reports:

* ``sessions_per_sec`` — completed session workloads per wall second,
  the saturation number;
* ``transitions_per_sec`` — learns retired per wall second across all
  clients (the serve-path analogue of the fleet sweeps' updates/sec);
* ``act_latency_ms`` — p50/p99/mean round-trip of the ``act`` op, the
  tenant-visible interactive number.

Results land in BENCH snapshots under the top-level
``serve_throughput`` key (``python -m repro.perf serve``), and the
regression sentinel gates them on same-machine comparisons with a
serving-appropriate tolerance (sockets are noisier than numpy loops —
see ``SERVE_REL_TOL`` in :mod:`repro.perf.compare`).

Everything here is loopback TCP on one host, so the numbers include
the full protocol cost (JSON, syscalls, the asyncio loop) but no
network; treat them as upper bounds for remote deployments.

``chaos=True`` (CLI: ``python -m repro.perf serve --chaos``) runs the
same workload *degraded*: the sharded backend boots with tight hang
timeouts, worker 0 is SIGSTOP'd just before the load starts, and the
hung-worker watchdog must detect it, SIGKILL it, restart the shard and
journal-replay every leased lane mid-bench.  The resulting record lands
under the snapshot's ``degraded_throughput`` key, so the regression
sentinel gates not just how fast the gateway is, but how fast it is
*while recovering* — the robustness number a deployment actually
plans around.

``tracing=True`` (CLI: ``--trace PATH``) attaches a shared-ring
tracer to every layer — the client threads, the gateway, the session
manager and the sharded parent (whose workers ship their spans back
through the Pipe) — with hot-op sampling forced to 1.0 so *every*
request yields a complete trace, merges the ring into one validated
Chrome ``trace_event`` file at ``trace_path``, and reports the span
census under the record's ``trace`` key.  ``recorder_dir`` adds an
on-disk flight recorder capturing structured chaos events (worker
kills, restarts, replays) alongside the spans.  The *healthy* bench is
left untraced so ``serve_throughput`` stays comparable across
snapshots; tracing cost is pinned separately by
:mod:`repro.obs.overhead`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Optional

#: Default shape of the full bench.
DEFAULT_LANES = 32
DEFAULT_CONCURRENCY = 8
DEFAULT_SESSIONS = 48
DEFAULT_TRANSITIONS = 256

#: Quick (CI smoke / test) shape.
QUICK_LANES = 8
QUICK_CONCURRENCY = 4
QUICK_SESSIONS = 12
QUICK_TRANSITIONS = 48


def _percentile(sorted_values: list[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending list (None when empty)."""
    if not sorted_values:
        return None
    rank = max(1, int(round(q * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_serve_throughput(
    *,
    engine: str = "vectorized",
    lanes: int = DEFAULT_LANES,
    concurrency: int = DEFAULT_CONCURRENCY,
    sessions: int = DEFAULT_SESSIONS,
    transitions_per_session: int = DEFAULT_TRANSITIONS,
    act_every: int = 4,
    num_states: int = 64,
    num_actions: int = 4,
    num_workers: int = 2,
    mp_context: Optional[str] = None,
    quick: bool = False,
    chaos: bool = False,
    tracing: bool = False,
    trace_path: Optional[str] = None,
    recorder_dir: Optional[str] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Measure gateway throughput and action latency under load.

    ``quick`` shrinks every axis to the CI smoke shape.  Returns the
    snapshot-embeddable record stored under ``serve_throughput`` — or,
    with ``chaos=True`` (sharded engine only), under
    ``degraded_throughput``: worker 0 is SIGSTOP'd before the load
    starts and the bench times the gateway *through* the watchdog's
    kill/restart/journal-replay recovery.

    ``tracing`` (implied by ``trace_path``) runs the whole stack
    traced at sample rate 1.0; ``recorder_dir`` attaches and dumps a
    flight recorder.  See the module docstring.
    """
    if chaos and engine != "sharded":
        raise ValueError(
            "chaos mode hangs a shard worker; it requires engine='sharded'"
        )
    if quick:
        lanes = min(lanes, QUICK_LANES)
        concurrency = min(concurrency, QUICK_CONCURRENCY)
        sessions = min(sessions, QUICK_SESSIONS)
        transitions_per_session = min(transitions_per_session, QUICK_TRANSITIONS)
    if concurrency < 1 or sessions < 1 or transitions_per_session < 1:
        raise ValueError("concurrency, sessions and transitions must be positive")
    if concurrency > lanes:
        raise ValueError(
            f"concurrency {concurrency} exceeds lanes {lanes}; clients would "
            "spend the bench waiting on admission"
        )

    import asyncio
    import random

    from ..core.config import QTAccelConfig
    from ..serve.client import ServeClient
    from ..serve.gateway import Gateway, run_gateway_in_thread
    from ..serve.session import SessionManager, build_serve_backend

    tracing = tracing or trace_path is not None
    tracer = None
    recorder = None
    if tracing:
        from ..obs.tracing import SpanRing, Tracer

        tracer = Tracer("client", ring=SpanRing(1 << 17))
    if recorder_dir:
        from ..obs.recorder import open_recorder

        recorder = open_recorder(recorder_dir)

    config = QTAccelConfig.qlearning(seed=11)
    backend_kw: dict = {}
    if chaos:
        # Tight watchdog so the SIGSTOP'd worker is detected, killed and
        # replay-recovered well inside the bench window.
        backend_kw = dict(
            ping_timeout_s=0.5, hang_timeout_s=1.0, stop_timeout_s=2.0
        )
    backend = build_serve_backend(
        config,
        engine=engine,
        lanes=lanes,
        num_states=num_states,
        num_actions=num_actions,
        num_workers=num_workers,
        mp_context=mp_context,
        **backend_kw,
    )
    manager = SessionManager(
        backend,
        checkpoint_every=128,
        tracer=tracer.fork("session") if tracer else None,
        recorder=recorder,
    )
    gateway = Gateway(
        manager,
        port=0,
        admission_timeout_s=30.0,
        maintenance_interval_s=0.1 if chaos else 0.25,
        tracer=tracer.fork("gateway") if tracer else None,
        recorder=recorder,
    )
    # The sharded parent adopts worker-shipped spans into the shared
    # ring; other engines have no worker processes to trace.
    if hasattr(backend, "obs_tracer"):
        backend.obs_tracer = tracer.fork("backend") if tracer else None
        backend.obs_recorder = recorder
    thread, loop = run_gateway_in_thread(gateway)
    if chaos:
        backend.hang_worker(0)

    work: "queue.SimpleQueue[int]" = queue.SimpleQueue()
    for i in range(sessions):
        work.put(i)
    latencies: list[float] = []
    errors: list[str] = []
    completed = [0]
    lock = threading.Lock()

    def _client(worker_idx: int) -> None:
        rng = random.Random(0xBEEF + worker_idx)
        local_lat: list[float] = []
        done = 0
        try:
            # Sample 1.0 when traced: the bench exists to produce
            # complete traces, not to measure tracing cost (that is
            # repro.obs.overhead's job).
            with ServeClient(
                port=gateway.port, tracer=tracer, trace_sample=1.0
            ) as client:
                while True:
                    try:
                        work.get_nowait()
                    except queue.Empty:
                        break
                    sess = client.open_session()
                    for i in range(transitions_per_session):
                        s = rng.randrange(num_states)
                        a = rng.randrange(num_actions)
                        r = rng.uniform(-1.0, 1.0)
                        ns = rng.randrange(num_states)
                        sess.learn(s, a, r, ns, rng.random() < 0.02)
                        if i % act_every == 0:
                            t0 = clock()
                            sess.act(ns, explore=True)
                            local_lat.append(clock() - t0)
                    sess.table(0)
                    sess.close()
                    done += 1
        except Exception as exc:  # noqa: BLE001 - reported in the record
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            with lock:
                latencies.extend(local_lat)
                completed[0] += done

    clients = [
        threading.Thread(target=_client, args=(i,), name=f"serve-load-{i}")
        for i in range(concurrency)
    ]
    t_start = clock()
    for c in clients:
        c.start()
    for c in clients:
        c.join()
    if chaos:
        # The degraded clock stays open until the watchdog has detected
        # the SIGSTOP'd worker and restarted its shard, so the recovery
        # window is *inside* the measured wall time even when the load
        # itself drains quickly (lane ops are served off shared memory
        # by the parent, so a tiny load can finish before detection).
        recover_by = time.monotonic() + 30.0
        while time.monotonic() < recover_by and (
            backend.hangs < 1 or backend.restarts < 1
        ):
            time.sleep(0.02)
    wall = clock() - t_start

    info = manager.server_info()
    trace_report: Optional[dict] = None
    if tracer is not None:
        from ..obs.collector import validate_span_tree, write_chrome_trace

        spans = tracer.ring.spans()
        problems = validate_span_tree(spans)
        trace_report = {
            "spans": len(spans),
            "dropped": tracer.ring.dropped,
            "procs": sorted({s.proc for s in spans}),
            "problems": problems,
        }
        if trace_path is not None:
            try:
                write_chrome_trace(
                    trace_path,
                    spans,
                    meta={"bench": "serve", "chaos": bool(chaos)},
                )
                trace_report["path"] = str(trace_path)
            except (OSError, ValueError) as exc:
                trace_report["problems"] = list(problems) + [
                    f"chrome trace not written: {exc}"
                ]
        if recorder is not None:
            trace_report["recorder"] = recorder.dump(spans=spans)
    elif recorder is not None:
        recorder.dump()
    if recorder is not None:
        recorder.close()
    asyncio.run_coroutine_threadsafe(gateway.close(), loop).result(timeout=30)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)

    latencies.sort()
    n_done = completed[0]
    total_transitions = n_done * transitions_per_session
    record = {
        "engine": engine,
        "lanes": lanes,
        "concurrency": concurrency,
        "sessions": sessions,
        "sessions_completed": n_done,
        "transitions_per_session": transitions_per_session,
        "quick": quick,
        "seconds": wall,
        "sessions_per_sec": n_done / wall if wall > 0 else None,
        "transitions_per_sec": total_transitions / wall if wall > 0 else None,
        "act_latency_ms": {
            "samples": len(latencies),
            "p50": _ms(_percentile(latencies, 0.50)),
            "p99": _ms(_percentile(latencies, 0.99)),
            "mean": _ms(sum(latencies) / len(latencies)) if latencies else None,
            "max": _ms(latencies[-1]) if latencies else None,
        },
        "rejected": info["sessions_rejected"],
        "recoveries": info["recoveries"],
        "errors": errors,
    }
    if trace_report is not None:
        record["trace"] = trace_report
        if trace_report["problems"]:
            record["errors"] = list(record["errors"]) + [
                f"trace: {p}" for p in trace_report["problems"][:5]
            ]
    if chaos:
        record["chaos"] = True
        record["hangs"] = getattr(backend, "hangs", 0)
        record["restarts"] = getattr(backend, "restarts", 0)
        if record["hangs"] < 1:
            record["errors"] = list(errors) + [
                "chaos: the SIGSTOP'd worker was never detected as hung"
            ]
    return record


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else seconds * 1e3


def render_serve_throughput(record: dict) -> str:
    """Human-readable rendering of one serve bench record."""
    lat = record.get("act_latency_ms") or {}

    def _fmt(v, suffix=""):
        return f"{v:,.1f}{suffix}" if isinstance(v, (int, float)) else "-"

    label = "degraded (chaos) throughput" if record.get("chaos") else "serve throughput"
    out = [
        f"{label} "
        f"(engine={record.get('engine')}, lanes={record.get('lanes')}, "
        f"concurrency={record.get('concurrency')}):",
        f"  sessions:    {record.get('sessions_completed')}/{record.get('sessions')} "
        f"completed at {_fmt(record.get('sessions_per_sec'), '/s')}",
        f"  transitions: {_fmt(record.get('transitions_per_sec'), '/s')} "
        f"({record.get('transitions_per_session')} per session)",
        f"  act latency: p50 {_fmt(lat.get('p50'), 'ms')}  "
        f"p99 {_fmt(lat.get('p99'), 'ms')}  mean {_fmt(lat.get('mean'), 'ms')} "
        f"({lat.get('samples')} queries)",
    ]
    if record.get("rejected"):
        out.append(f"  rejected:    {record['rejected']} admission refusals")
    if record.get("recoveries"):
        out.append(f"  recoveries:  {record['recoveries']} session recoveries")
    if record.get("chaos"):
        out.append(
            f"  chaos:       {record.get('hangs', 0)} hung worker(s) detected, "
            f"{record.get('restarts', 0)} shard restart(s)"
        )
    trace = record.get("trace")
    if trace:
        line = (
            f"  trace:       {trace.get('spans')} span(s) across "
            f"{', '.join(trace.get('procs', []))}"
        )
        if trace.get("path"):
            line += f" -> {trace['path']}"
        out.append(line)
        if trace.get("recorder"):
            out.append(f"  recorder:    {trace['recorder']}")
    if record.get("errors"):
        out.append(f"  ERRORS: {record['errors']}")
    return "\n".join(out)
