"""Performance observatory: bench harness, snapshots, sentinel, export.

The perf subsystem turns the repo's throughput story into defended,
machine-readable artifacts, layered on :mod:`repro.telemetry`:

* :mod:`repro.perf.stats` — noise-aware summaries (median, MAD,
  bootstrap confidence intervals) for small wall-clock sample sets.
* :mod:`repro.perf.bench` — the harness: warmup + globally interleaved
  pinned repeats over the hot loops of every engine (functional,
  cycle-accurate pipeline, batch fleet, multi-pipeline) plus the
  telemetry-attached and ``ecc_tables=True`` variants, so
  instrumentation and ECC overhead are measured quantities.
* :mod:`repro.perf.snapshot` — schema-versioned ``BENCH_<n>.json``
  snapshots (per-engine samples/sec, cycles/sample, modelled MS/s at
  the paper's 189 MHz, overhead ratios, machine fingerprint).
* :mod:`repro.perf.fleet` — the scalar-vs-vectorized fleet throughput
  sweep over a ladder of lane counts (updates/sec per backend, paired
  speedup), recorded under a snapshot's ``fleet_throughput`` key.
* :mod:`repro.perf.serve` — the session-gateway saturation bench
  (sessions/sec, transitions/sec, p50/p99 action latency over live
  NDJSON TCP), recorded under a snapshot's ``serve_throughput`` key.
* :mod:`repro.perf.compare` — the regression sentinel: diffs two
  snapshots with ``max(rel_tol, k*MAD)`` thresholds and exits non-zero
  for CI gating.
* :mod:`repro.perf.metrics_export` — live export: an
  OpenMetrics/Prometheus text renderer over a
  :class:`~repro.telemetry.counters.CounterRegistry` and periodic
  emitters (JSON-lines append, OpenMetrics textfile) that a
  :class:`~repro.telemetry.session.TelemetrySession` pulses mid-run.
* :mod:`repro.perf.stagetime` — sampled per-stage wall-time
  attribution for :class:`~repro.core.pipeline.QTAccelPipeline`
  (timestamp every Nth cycle; off by default, pointer-test cost only).

CLI: ``python -m repro.perf {run,fleet,serve,compare,report}``.
"""

from .bench import BENCH_CASES, BenchResult, run_bench
from .compare import CompareResult, compare_snapshots, render_comparison
from .fleet import (
    LANE_COUNTS,
    SMOKE_LANE_COUNTS,
    check_min_speedup,
    render_fleet_throughput,
    run_fleet_throughput,
)
from .metrics_export import (
    JsonlEmitter,
    OpenMetricsTextfileEmitter,
    escape_label_value,
    render_openmetrics,
    sanitize_metric_name,
    validate_openmetrics,
)
from .serve import render_serve_throughput, run_serve_throughput
from .snapshot import (
    SCHEMA,
    build_snapshot,
    load_snapshot,
    machine_fingerprint,
    next_bench_path,
    snapshot_from_profile,
    write_snapshot,
)
from .stagetime import StageTimer
from .stats import bootstrap_ci, mad, median, summarize

__all__ = [
    "BENCH_CASES",
    "BenchResult",
    "run_bench",
    "CompareResult",
    "compare_snapshots",
    "render_comparison",
    "LANE_COUNTS",
    "SMOKE_LANE_COUNTS",
    "check_min_speedup",
    "render_fleet_throughput",
    "run_fleet_throughput",
    "render_serve_throughput",
    "run_serve_throughput",
    "JsonlEmitter",
    "OpenMetricsTextfileEmitter",
    "escape_label_value",
    "render_openmetrics",
    "sanitize_metric_name",
    "validate_openmetrics",
    "SCHEMA",
    "build_snapshot",
    "load_snapshot",
    "machine_fingerprint",
    "next_bench_path",
    "snapshot_from_profile",
    "write_snapshot",
    "StageTimer",
    "bootstrap_ci",
    "mad",
    "median",
    "summarize",
]
