"""Sampled per-stage wall-time attribution for the cycle pipeline.

The cycle-accurate :class:`~repro.core.pipeline.QTAccelPipeline`
evaluates its four stages S4..S1 inside one Python call per cycle;
cycle *counts* say nothing about which stage burns the simulator's
wall-clock.  A :class:`StageTimer` timestamps the stage boundaries of
every Nth cycle and accumulates per-stage seconds, giving a
stage-occupancy answer ("stage 3's arithmetic is 40% of eval time")
without paying ``perf_counter`` on every cycle.

Cost discipline matches the telemetry probe: a detached pipeline holds
``None`` in ``pipe._stage_timer`` and pays one pointer test per cycle;
the non-sampled cycles of an attached pipeline pay the pointer test
plus one modulo.  The bench snapshot's ``stage_attribution`` section is
produced by :func:`repro.perf.bench.measure_stage_attribution`.
"""

from __future__ import annotations

#: Stage keys in pipeline evaluation order (S4 first — see
#: QTAccelPipeline.eval); ``issue`` time is attributed to S1.
STAGE_KEYS = ("S4", "S3", "S2", "S1")


class StageTimer:
    """Accumulates sampled stage-boundary timings for one pipeline.

    Attach with :meth:`attach` (or construct the pipeline and assign
    ``pipe._stage_timer``); the pipeline calls :meth:`armed` once per
    cycle and, on armed cycles, hands the five boundary timestamps to
    :meth:`commit`.
    """

    __slots__ = ("sample_every", "seconds", "sampled_cycles")

    def __init__(self, sample_every: int = 64):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.seconds = {k: 0.0 for k in STAGE_KEYS}
        self.sampled_cycles = 0

    def attach(self, pipe) -> "StageTimer":
        """Install this timer on ``pipe`` and return it."""
        pipe._stage_timer = self
        return self

    def armed(self, cycle: int) -> bool:
        """Is ``cycle`` one of the sampled cycles?"""
        return cycle % self.sample_every == 0

    def commit(self, stamps) -> None:
        """Record one sampled cycle's boundary timestamps.

        ``stamps`` is the 5-element ``perf_counter`` list the pipeline
        collected: before S4, after S4, after S3, after S2, after S1.
        """
        sec = self.seconds
        for i, key in enumerate(STAGE_KEYS):
            sec[key] += stamps[i + 1] - stamps[i]
        self.sampled_cycles += 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Per-stage share of sampled eval time, S1..S4 keyed."""
        total = self.total_seconds
        if total <= 0.0:
            return {k: 0.0 for k in STAGE_KEYS}
        return {k: self.seconds[k] / total for k in STAGE_KEYS}

    def summary(self) -> dict:
        """JSON-ready section for the bench snapshot."""
        return {
            "sample_every": self.sample_every,
            "sampled_cycles": self.sampled_cycles,
            "seconds": dict(self.seconds),
            "fractions": self.fractions(),
        }

    def reset(self) -> None:
        self.seconds = {k: 0.0 for k in STAGE_KEYS}
        self.sampled_cycles = 0

    def __repr__(self) -> str:
        return (
            f"StageTimer(every={self.sample_every}, "
            f"sampled={self.sampled_cycles})"
        )
