"""Tests for the multi-agent world wrappers."""

import numpy as np
import pytest

from repro.envs.multi_agent import (
    collision_probability,
    measure_collisions,
    partition_grid,
    shared_world,
)


class TestPartition:
    def test_four_tiles(self):
        tiles = partition_grid(16, 4)
        assert len(tiles) == 4
        assert all(t.num_states == 64 for t in tiles)

    def test_single_tile(self):
        tiles = partition_grid(16, 1)
        assert len(tiles) == 1
        assert tiles[0].num_states == 256

    def test_sixteen_tiles(self):
        tiles = partition_grid(32, 16)
        assert len(tiles) == 16
        assert all(t.num_states == 64 for t in tiles)

    def test_tiles_named(self):
        tiles = partition_grid(16, 4)
        assert tiles[0].name.startswith("tile0")
        assert tiles[3].name.startswith("tile3")

    def test_obstacles_differ_across_tiles(self):
        tiles = partition_grid(32, 4, obstacle_density=0.2, seed=5)
        loops = [int((t.next_state == np.arange(t.num_states)[:, None]).sum()) for t in tiles]
        assert len(set(loops)) > 1  # independent draws

    def test_rejects_non_power_of_four(self):
        with pytest.raises(ValueError):
            partition_grid(16, 2)
        with pytest.raises(ValueError):
            partition_grid(16, 8)

    def test_rejects_too_small_tiles(self):
        with pytest.raises(ValueError):
            partition_grid(4, 16)


class TestSharedWorld:
    def test_is_plain_grid(self):
        mdp = shared_world(8, 4)
        assert mdp.num_states == 64
        assert mdp.terminal.sum() == 1


class TestCollisions:
    def test_probability(self):
        assert collision_probability(64) == pytest.approx(1 / 64)
        with pytest.raises(ValueError):
            collision_probability(0)

    def test_measure(self):
        a = np.array([1, 2, 3, 4])
        b = np.array([1, 9, 3, 9])
        assert measure_collisions(a, b) == 0.5

    def test_measure_empty(self):
        assert measure_collisions(np.array([]), np.array([])) == 0.0

    def test_measure_shape_mismatch(self):
        with pytest.raises(ValueError):
            measure_collisions(np.array([1]), np.array([1, 2]))
