"""Tests for the action-selection policies."""

import pytest

from repro.core.config import QTAccelConfig
from repro.core.policies import (
    PolicyDraws,
    draw_start_state,
    egreedy_cut,
    egreedy_select,
    select_behavior,
    select_update,
)


def make_reads(qmax_val=10, qmax_act=2, q_values=None):
    """Stub read callables recording their invocations."""
    calls = {"qmax": [], "q": []}

    def read_qmax(s):
        calls["qmax"].append(s)
        return qmax_val, qmax_act

    def read_q(s, a):
        calls["q"].append((s, a))
        return (q_values or {}).get((s, a), 0)

    return read_qmax, read_q, calls


class TestEgreedyCut:
    def test_values(self):
        assert egreedy_cut(0.0, 8) == 256
        assert egreedy_cut(1.0, 8) == 0
        assert egreedy_cut(0.25, 8) == 192


class TestDrawStart:
    def test_draws_from_start_set(self):
        draws = PolicyDraws.from_config(QTAccelConfig.qlearning(seed=1))
        starts = [5, 9, 11]
        for _ in range(50):
            assert draw_start_state(draws, starts) in starts


class TestEgreedySelect:
    def test_epsilon_zero_always_exploits(self):
        draws = PolicyDraws.from_config(QTAccelConfig.sarsa(seed=2))
        read_qmax, read_q, calls = make_reads(qmax_val=7, qmax_act=3)
        for _ in range(30):
            sel = egreedy_select(
                4, epsilon=0.0, draws=draws, read_qmax=read_qmax,
                read_q=read_q, num_actions=4,
            )
            assert sel.exploited
            assert sel.action == 3
            assert sel.q_raw == 7
        assert not calls["q"]

    def test_epsilon_one_always_explores(self):
        draws = PolicyDraws.from_config(QTAccelConfig.sarsa(seed=2))
        read_qmax, read_q, calls = make_reads()
        seen = set()
        for _ in range(60):
            sel = egreedy_select(
                4, epsilon=1.0, draws=draws, read_qmax=read_qmax,
                read_q=read_q, num_actions=4,
            )
            assert not sel.exploited
            seen.add(sel.action)
        assert seen == {0, 1, 2, 3}
        assert not calls["qmax"]

    def test_exploration_rate_tracks_epsilon(self):
        draws = PolicyDraws.from_config(QTAccelConfig.sarsa(seed=3))
        read_qmax, read_q, _ = make_reads()
        explores = sum(
            not egreedy_select(
                0, epsilon=0.3, draws=draws, read_qmax=read_qmax,
                read_q=read_q, num_actions=4,
            ).exploited
            for _ in range(10_000)
        )
        assert 0.27 < explores / 10_000 < 0.33

    def test_explored_value_comes_from_q_table(self):
        draws = PolicyDraws.from_config(QTAccelConfig.sarsa(seed=4))
        q_values = {(4, a): 100 + a for a in range(4)}
        read_qmax, read_q, _ = make_reads(q_values=q_values)
        sel = egreedy_select(
            4, epsilon=1.0, draws=draws, read_qmax=read_qmax,
            read_q=read_q, num_actions=4,
        )
        assert sel.q_raw == 100 + sel.action


class TestSelectUpdate:
    def test_greedy_reads_qmax_once(self):
        cfg = QTAccelConfig.qlearning(seed=1)
        draws = PolicyDraws.from_config(cfg)
        read_qmax, read_q, calls = make_reads(qmax_val=42, qmax_act=1)
        sel = select_update(
            7, config=cfg, draws=draws, read_qmax=read_qmax,
            read_q=read_q, num_actions=4,
        )
        assert sel.q_raw == 42 and sel.action == 1 and sel.exploited
        assert calls["qmax"] == [7]
        assert not calls["q"]

    def test_greedy_consumes_no_draws(self):
        cfg = QTAccelConfig.qlearning(seed=1)
        draws = PolicyDraws.from_config(cfg)
        before = draws.policy.lfsr.state
        read_qmax, read_q, _ = make_reads()
        select_update(0, config=cfg, draws=draws, read_qmax=read_qmax,
                      read_q=read_q, num_actions=4)
        assert draws.policy.lfsr.state == before

    def test_egreedy_consumes_exactly_one_draw(self):
        cfg = QTAccelConfig.sarsa(seed=1)
        draws = PolicyDraws.from_config(cfg)
        read_qmax, read_q, _ = make_reads()
        peek = PolicyDraws.from_config(cfg)
        peek.policy.bits()  # one decimated draw
        select_update(0, config=cfg, draws=draws, read_qmax=read_qmax,
                      read_q=read_q, num_actions=4)
        assert draws.policy.lfsr.state == peek.policy.lfsr.state


class TestSelectBehavior:
    def test_random_uniform(self):
        cfg = QTAccelConfig.qlearning(seed=5)
        draws = PolicyDraws.from_config(cfg)
        read_qmax, read_q, _ = make_reads()
        seen = {
            select_behavior(
                0, config=cfg, draws=draws, forwarded_action=None,
                read_qmax=read_qmax, read_q=read_q, num_actions=4,
            )
            for _ in range(100)
        }
        assert seen == {0, 1, 2, 3}

    def test_forwarded_action_used_verbatim(self):
        cfg = QTAccelConfig.sarsa(seed=5)
        draws = PolicyDraws.from_config(cfg)
        before = draws.policy.lfsr.state
        read_qmax, read_q, calls = make_reads()
        a = select_behavior(
            3, config=cfg, draws=draws, forwarded_action=2,
            read_qmax=read_qmax, read_q=read_q, num_actions=4,
        )
        assert a == 2
        assert draws.policy.lfsr.state == before  # no draw
        assert not calls["qmax"] and not calls["q"]

    def test_restart_makes_fresh_egreedy_draw(self):
        cfg = QTAccelConfig.sarsa(seed=5, epsilon=0.0)
        draws = PolicyDraws.from_config(cfg)
        read_qmax, read_q, calls = make_reads(qmax_act=1)
        a = select_behavior(
            3, config=cfg, draws=draws, forwarded_action=None,
            read_qmax=read_qmax, read_q=read_q, num_actions=4,
        )
        assert a == 1
        assert calls["qmax"] == [3]


class TestPolicyDraws:
    def test_streams_distinct(self):
        d = PolicyDraws.from_config(QTAccelConfig.qlearning(seed=1))
        assert len({d.start.lfsr.state, d.action.lfsr.state, d.policy.lfsr.state}) == 3

    def test_salt_decorrelates(self):
        cfg = QTAccelConfig.qlearning(seed=1)
        a = PolicyDraws.from_config(cfg, salt=0)
        b = PolicyDraws.from_config(cfg, salt=1)
        assert a.action.lfsr.state != b.action.lfsr.state
