"""End-to-end integration tests: the accelerator actually learns.

These exercise the full stack — environment construction, LFSR streams,
fixed-point datapath, Qmax maintenance, episode handling — and assert
the paper's implicit success criterion: the learned greedy policy drives
the robot to the goal.
"""

import numpy as np
import pytest

from repro.core import (
    QLearningAccelerator,
    QTAccelConfig,
    SarsaAccelerator,
)
from repro.core.functional import FunctionalSimulator
from repro.core.metrics import convergence_report, greedy_rollout
from repro.envs.gridworld import GridWorld


class TestQLearningConvergence:
    def test_obstacle_grid(self, grid8):
        acc = QLearningAccelerator(grid8, alpha=0.5, gamma=0.9, seed=7)
        acc.run(200_000)
        rep = acc.convergence()
        assert rep.success == 1.0
        assert rep.agreement > 0.8

    def test_empty_16(self, empty16):
        acc = QLearningAccelerator(empty16, alpha=0.5, gamma=0.9, seed=7)
        acc.run(500_000)
        assert acc.convergence().success > 0.99

    def test_eight_actions(self):
        mdp = GridWorld.random(8, 8, obstacle_density=0.1, seed=4).to_mdp()
        acc = QLearningAccelerator(mdp, alpha=0.5, gamma=0.9, seed=7)
        acc.run(250_000)
        assert acc.convergence().success > 0.95

    def test_policy_path_is_short(self, empty16):
        """On an empty grid the greedy path length approaches Manhattan
        distance to the goal."""
        acc = QLearningAccelerator(empty16, alpha=0.5, gamma=0.9, seed=7)
        acc.run(300_000)
        enc = empty16.metadata["encoding"]
        start = enc.encode(0, 0)
        _, steps, ok = greedy_rollout(empty16, acc.q_values(), start, gamma=0.9)
        assert ok
        assert steps <= 30 + 2  # Manhattan distance 30 plus slack

    def test_cycle_engine_learns_too(self, grid8):
        acc = QLearningAccelerator(grid8, alpha=0.5, gamma=0.9, seed=7)
        acc.run(60_000, engine="cycle")
        assert acc.convergence().success > 0.9


class TestSarsaConvergence:
    def test_follow_qmax_learns(self, grid8):
        acc = SarsaAccelerator(
            grid8, alpha=0.5, gamma=0.9, epsilon=0.2, seed=7, qmax_mode="follow"
        )
        acc.run(200_000)
        assert acc.convergence().success > 0.8

    def test_paper_monotonic_qmax_fails_with_negative_rewards(self, grid8):
        """The documented §V-A artifact: the monotonic Qmax pins SARSA's
        exploit action under -255 wall penalties and learning collapses.
        This is the reproduction of a *negative* finding — see
        EXPERIMENTS.md (ablation_qmax)."""
        acc = SarsaAccelerator(grid8, alpha=0.5, gamma=0.9, epsilon=0.2, seed=7)
        acc.run(100_000)
        assert acc.episodes_completed == 0

    def test_exact_qmax_learns(self, grid8):
        cfg = QTAccelConfig.sarsa(
            alpha=0.5, gamma=0.9, epsilon=0.2, seed=7, qmax_mode="exact"
        )
        sim = FunctionalSimulator(grid8, cfg)
        sim.run(200_000)
        rep = convergence_report(grid8, sim.q_float(), gamma=0.9, samples=200_000)
        assert rep.success > 0.5


class TestLargeScale:
    def test_32x32_grid_learns(self):
        """A mid-sized world (1024 states) end to end on the fast path.

        Random-restart uniform exploration propagates the goal's value as
        a diffusion wavefront, so the sample budget must scale with
        states x diameter; 32x32 at 1.2M samples is comfortably past it.
        """
        mdp = GridWorld.empty(32, 4).to_mdp()
        acc = QLearningAccelerator(mdp, alpha=0.5, gamma=0.95, seed=7)
        acc.run(1_200_000)
        # Individual far corners can lag the diffusion front; judge the
        # policy statistically over a spread of start states.
        rep = acc.convergence()
        assert rep.success > 0.95

    def test_512x512_tables_build_and_run(self):
        """The paper's largest case constructs and processes samples."""
        mdp = GridWorld.empty(512, 8).to_mdp()
        acc = QLearningAccelerator(mdp, seed=7)
        res = acc.run(5_000)
        assert res.samples == 5_000
        assert acc.resource_report().fits
