"""Tests for the robustness subsystem: SECDED ECC, fault injection,
divergence guards, checkpoint/restore, and the fleet supervisor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchIndependentSimulator
from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.pipeline import QTAccelPipeline
from repro.envs.gridworld import GridWorld
from repro.robustness import (
    BatchLanes,
    CheckpointStore,
    DivergenceError,
    DivergenceGuard,
    EccTableRam,
    FaultInjector,
    FleetSupervisor,
    Scrubber,
    SecDed,
    SimLanes,
    Watchdog,
)
from repro.robustness.ecc import (
    DECODE_CLEAN,
    DECODE_CORRECTED,
    DECODE_DETECTED,
)


def _mdp():
    return GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()


def _cfg(**kw):
    return QTAccelConfig.qlearning(seed=5, **kw)


# ---------------------------------------------------------------------- #
# SECDED codec
# ---------------------------------------------------------------------- #


class TestSecDed:
    @pytest.mark.parametrize("width", [1, 4, 8, 16, 21, 57])
    def test_roundtrip_clean(self, width):
        codec = SecDed(width)
        rng = np.random.default_rng(0)
        for word in [0, (1 << width) - 1, *rng.integers(0, 1 << width, 8)]:
            word = int(word)
            check = codec.encode(word)
            assert codec.decode(word, check) == (DECODE_CLEAN, word, check)

    def test_every_single_bit_flip_corrected(self):
        """Exhaustive over all 22 codeword bits of a 16-bit word."""
        codec = SecDed(16)
        for word in (0, 0xA5A5 & 0xFFFF, 0xFFFF):
            check = codec.encode(word)
            for bit in range(16):
                status, w, c = codec.decode(word ^ (1 << bit), check)
                assert status == DECODE_CORRECTED
                assert (w, c) == (word, check)
            for bit in range(codec.check_bits):
                status, w, c = codec.decode(word, check ^ (1 << bit))
                assert status == DECODE_CORRECTED
                assert (w, c) == (word, check)

    def test_every_double_bit_flip_detected(self):
        """Exhaustive over all codeword bit pairs of a 16-bit word."""
        codec = SecDed(16)
        word = 0x3C71
        check = codec.encode(word)
        total = 16 + codec.check_bits

        def flipped(bit):
            if bit < 16:
                return word ^ (1 << bit), check
            return word, check ^ (1 << (bit - 16))

        for b1 in range(total):
            for b2 in range(b1 + 1, total):
                w, c = flipped(b1)
                if b2 < 16:
                    w ^= 1 << b2
                else:
                    c ^= 1 << (b2 - 16)
                status, _, _ = codec.decode(w, c)
                assert status == DECODE_DETECTED, (b1, b2)

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            SecDed(0)
        with pytest.raises(ValueError):
            SecDed(58)

    def test_encode_many_matches_scalar(self):
        codec = SecDed(16)
        words = np.random.default_rng(1).integers(0, 1 << 16, 64, dtype=np.int64)
        checks = codec.encode_many(words)
        for w, c in zip(words, checks):
            assert codec.encode(int(w)) == int(c)
        assert np.all(codec.syndrome_many(words, checks) == 0)

    def test_syndrome_many_flags_corruption(self):
        codec = SecDed(16)
        words = np.zeros(8, dtype=np.int64)
        checks = codec.encode_many(words)
        words[3] ^= 1 << 7
        syn = codec.syndrome_many(words, checks)
        assert syn[3] != 0
        assert np.count_nonzero(syn) == 1


# ---------------------------------------------------------------------- #
# EccTableRam
# ---------------------------------------------------------------------- #


class TestEccTableRam:
    def _ram(self, **kw):
        return EccTableRam(16, 16, name="t", **kw)

    def test_single_flip_corrected_on_read(self):
        ram = self._ram()
        ram.write_now(3, -100)
        ram.inject(3, 13)
        assert ram.data[3] != -100  # corrupted in storage
        assert ram.read(3) == -100
        assert ram.data[3] == -100  # write-back correction fixed storage
        assert ram.ecc_corrected == 1
        assert ram.ecc_detected == 0

    def test_check_bit_flip_corrected(self):
        ram = self._ram()
        ram.write_now(1, 42)
        ram.inject(1, 16)  # bit >= width strikes the check array
        assert ram.read(1) == 42
        assert ram.ecc_corrected == 1

    def test_double_flip_detected_not_corrected(self):
        ram = self._ram()
        ram.write_now(2, 7)
        ram.inject(2, 0)
        ram.inject(2, 9)
        ram.read(2)
        assert ram.ecc_detected == 1
        assert ram.ecc_corrected == 0

    def test_write_reencodes(self):
        ram = self._ram()
        ram.inject(5, 4)
        ram.write_now(5, 99)  # overwrite clears the corruption
        assert ram.scrub_word(5) == DECODE_CLEAN
        assert ram.read(5) == 99

    def test_staged_write_commit_reencodes(self):
        ram = self._ram()
        ram.write(7, -5)
        ram.commit()
        assert ram.scrub_word(7) == DECODE_CLEAN
        assert ram.read(7) == -5

    def test_read_many_corrects(self):
        ram = self._ram()
        ram.write_many_now(np.arange(8), np.arange(8) * 3)
        ram.inject(4, 2)
        out = ram.read_many(np.array([1, 4, 4, 7]))
        assert list(out) == [3, 12, 12, 21]
        assert ram.ecc_corrected == 1

    def test_state_dict_roundtrip(self):
        ram = self._ram()
        ram.write_now(0, -1)
        snap = ram.state_dict()
        ram.write_now(0, 5)
        ram.inject(1, 3)
        ram.load_state_dict(snap)
        assert ram.read(0) == -1
        assert ram.scrub_word(1) == DECODE_CLEAN

    def test_unsigned_mode(self):
        ram = EccTableRam(4, 3, name="act", signed=False)
        ram.write_now(0, 5)
        ram.inject(0, 2)
        assert ram.read(0) == 5
        assert ram.data[0] >= 0


# ---------------------------------------------------------------------- #
# Fault injector
# ---------------------------------------------------------------------- #


class TestFaultInjector:
    def test_poisson_strikes_deterministic(self):
        tables = []
        for _ in range(2):
            arr = np.zeros(64, dtype=np.int64)
            inj = FaultInjector(seed=7, rate=0.5)
            inj.add_array(arr, 16, label="q")
            for _ in range(50):
                inj.step(4)
            tables.append((arr.copy(), inj.injected))
        assert tables[0][1] == tables[1][1] > 0
        assert np.array_equal(tables[0][0], tables[1][0])

    def test_scheduled_flip_fires_at_exact_time(self):
        ram = EccTableRam(8, 16, name="q")
        inj = FaultInjector(seed=0)
        inj.schedule(5, ram, 2, 3)
        inj.step(4)
        assert inj.injected_scheduled == 0
        assert ram.scrub_word(2) == DECODE_CLEAN
        inj.step(1)
        assert inj.injected_scheduled == 1
        assert ram.scrub_word(2) == DECODE_CORRECTED

    def test_schedule_in_past_rejected(self):
        inj = FaultInjector()
        inj.step(10)
        with pytest.raises(ValueError):
            inj.schedule(9, np.zeros(1, dtype=np.int64), 0, 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=-0.1)

    def test_strikes_cover_all_targets(self):
        """Uniform strikes land in every registered table eventually,
        proportionally to size (bigger tables take more hits)."""
        small = np.zeros(8, dtype=np.int64)
        big = np.zeros(64, dtype=np.int64)
        inj = FaultInjector(seed=3, rate=10.0)
        inj.add_array(small, 16, label="small")
        inj.add_array(big, 16, label="big")
        inj.step(100)
        hits_small = int(np.count_nonzero(small))
        hits_big = int(np.count_nonzero(big))
        assert hits_small > 0 and hits_big > hits_small

    def test_corrupt_pipeline_register(self):
        pipe = QTAccelPipeline(_mdp(), _cfg())
        for _ in range(4):  # fill the pipe so registers hold live samples
            pipe.step()
        inj = FaultInjector(seed=1)
        desc = inj.corrupt_pipeline(pipe)
        assert desc is not None and "[" in desc
        assert inj.injected_registers == 1

    def test_corrupt_empty_pipeline_is_none(self):
        pipe = QTAccelPipeline(_mdp(), _cfg())
        assert FaultInjector().corrupt_pipeline(pipe) is None

    def test_add_tables_unknown_name(self):
        sim = FunctionalSimulator(_mdp(), _cfg(ecc_tables=True))
        inj = FaultInjector()
        with pytest.raises(ValueError):
            inj.add_tables(sim.tables, include=("qq",))


# ---------------------------------------------------------------------- #
# Scrubber
# ---------------------------------------------------------------------- #


class TestScrubber:
    def test_background_sweep_corrects_without_reads(self):
        ram = EccTableRam(64, 16, name="q")
        scrub = Scrubber(burst=16)
        scrub.add_ram(ram)
        ram.inject(40, 11)
        for _ in range(4):  # 4 bursts of 16 cover all 64 words
            scrub.step()
        assert scrub.corrected == 1
        assert ram.scrub_word(40) == DECODE_CLEAN

    def test_detected_double_error_counted(self):
        ram = EccTableRam(8, 16, name="q")
        scrub = Scrubber(burst=8)
        scrub.add_ram(ram)
        ram.inject(0, 1)
        ram.inject(0, 2)
        scrub.scrub_all()
        assert scrub.detected >= 1
        assert scrub.corrected == 0

    def test_semantic_qmax_repair(self):
        """A Qmax word laundered below its row max (valid ECC, wrong
        value) is rewritten from the Q row."""
        sim = FunctionalSimulator(_mdp(), _cfg(ecc_tables=True))
        sim.run(200)
        T = sim.tables
        state = 37  # visited heavily by the golden trace
        row_max = int(T.row_q(state).max())
        T.qmax.write_now(state, row_max - 10)  # valid codeword, wrong value
        scrub = Scrubber(burst=8)
        scrub.add_tables(T)
        scrub.scrub_all()
        assert scrub.scrub_repairs == 1
        assert int(T.qmax.data[state]) == row_max
        assert T.qmax_invariant_holds()

    def test_repair_vetoed_on_uncorrectable_word(self):
        sim = FunctionalSimulator(_mdp(), _cfg(ecc_tables=True))
        sim.run(50)
        T = sim.tables
        T.qmax.inject(37, 0)
        T.qmax.inject(37, 5)  # double error: repair must not trust it
        scrub = Scrubber(burst=8)
        scrub.add_tables(T)
        repairs_before = scrub.scrub_repairs
        scrub.scrub_all()
        assert scrub.detected >= 1
        assert scrub.scrub_repairs == repairs_before

    def test_plain_tables_rejected(self):
        sim = FunctionalSimulator(_mdp(), _cfg())
        scrub = Scrubber()
        with pytest.raises(TypeError):
            scrub.add_tables(sim.tables)
        with pytest.raises(TypeError):
            scrub.add_ram(sim.tables.q)


# ---------------------------------------------------------------------- #
# ECC-backed engines stay bit-identical to plain ones (no faults)
# ---------------------------------------------------------------------- #


class TestEccTransparency:
    @pytest.mark.parametrize("preset", ["qlearning", "sarsa"])
    def test_functional_trajectory_unchanged(self, preset):
        mdp = _mdp()
        make = getattr(QTAccelConfig, preset)
        plain = FunctionalSimulator(mdp, make(seed=5))
        ecc = FunctionalSimulator(mdp, make(seed=5, ecc_tables=True))
        t_plain = plain.enable_trace()
        t_ecc = ecc.enable_trace()
        plain.run(300)
        ecc.run(300)
        assert t_plain == t_ecc
        assert np.array_equal(plain.tables.q.data, ecc.tables.q.data)

    def test_pipeline_trajectory_unchanged(self):
        mdp = _mdp()
        plain = QTAccelPipeline(mdp, _cfg())
        ecc = QTAccelPipeline(mdp, _cfg(ecc_tables=True))
        t_plain = plain.enable_trace()
        t_ecc = ecc.enable_trace()
        plain.run(100)
        ecc.run(100)
        assert t_plain == t_ecc


# ---------------------------------------------------------------------- #
# Divergence guards
# ---------------------------------------------------------------------- #


class TestDivergenceGuard:
    def _fmt(self):
        return QTAccelConfig().q_format

    def test_out_of_range_raises(self):
        guard = DivergenceGuard("raise")
        fmt = self._fmt()
        with pytest.raises(DivergenceError):
            guard.observe_update(1, 2, fmt.raw_max + 1, fmt)

    def test_out_of_range_clamped(self):
        guard = DivergenceGuard("clamp")
        fmt = self._fmt()
        assert guard.observe_update(1, 2, fmt.raw_max + 99, fmt) == fmt.raw_max
        assert guard.observe_update(1, 2, fmt.raw_min - 99, fmt) == fmt.raw_min
        assert guard.out_of_range == 2
        assert guard.quarantined == set()

    def test_quarantine_records_pair(self):
        guard = DivergenceGuard("quarantine")
        fmt = self._fmt()
        guard.observe_update(3, 1, fmt.raw_min - 1, fmt)
        assert (3, 1) in guard.quarantined

    def test_in_range_untouched(self):
        guard = DivergenceGuard("raise")
        fmt = self._fmt()
        assert guard.observe_update(0, 0, 1234, fmt) == 1234
        assert guard.events == 0

    def test_stuck_at_rail_trips_on_streak(self):
        guard = DivergenceGuard("quarantine", stuck_limit=4)
        fmt = self._fmt()
        for _ in range(3):
            guard.observe_update(5, 0, fmt.raw_min, fmt)
        assert guard.stuck_events == 0
        guard.observe_update(5, 0, fmt.raw_min, fmt)
        assert guard.stuck_events == 1
        assert (5, 0) in guard.quarantined

    def test_streak_resets_on_other_pair(self):
        guard = DivergenceGuard("clamp", stuck_limit=3)
        fmt = self._fmt()
        guard.observe_update(5, 0, fmt.raw_min, fmt)
        guard.observe_update(5, 0, fmt.raw_min, fmt)
        guard.observe_update(6, 0, fmt.raw_min, fmt)  # different pair
        guard.observe_update(5, 0, fmt.raw_min, fmt)
        assert guard.stuck_events == 0

    def test_legitimate_fixed_point_not_flagged(self):
        """The golden SARSA wall-grind (fixed point -16320, far off the
        -32768 rail) must not look like a stuck-at fault."""
        guard = DivergenceGuard("raise", stuck_limit=8)
        fmt = self._fmt()
        for _ in range(100):
            assert guard.observe_update(6, 0, -16320, fmt) == -16320
        assert guard.events == 0

    def test_array_path_quarantines_lane(self):
        guard = DivergenceGuard("quarantine", stuck_limit=3)
        fmt = self._fmt()
        q = np.array([0, fmt.raw_max, 5], dtype=np.int64)
        for _ in range(3):
            guard.observe_array(q, fmt)
        assert guard.quarantined_lanes == {1}
        assert guard.stuck_events == 1

    def test_check_finite(self):
        guard = DivergenceGuard("clamp")
        assert guard.check_finite([1.0, 2.0])
        assert not guard.check_finite([1.0, float("nan")])
        assert guard.nonfinite == 1
        with pytest.raises(DivergenceError):
            DivergenceGuard("raise").check_finite([float("inf")])

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            DivergenceGuard("panic")
        with pytest.raises(ValueError):
            DivergenceGuard(stuck_limit=1)

    def test_guarded_run_is_transparent_when_healthy(self):
        mdp = _mdp()
        ref = FunctionalSimulator(mdp, _cfg())
        ref.run(200)
        sim = FunctionalSimulator(mdp, _cfg())
        sim.guard = DivergenceGuard("raise", stuck_limit=64)
        sim.run(200)
        assert np.array_equal(ref.tables.q.data, sim.tables.q.data)


# ---------------------------------------------------------------------- #
# Checkpoint determinism (functional / pipeline / batch)
# ---------------------------------------------------------------------- #


class TestCheckpointDeterminism:
    def test_functional_restore_is_bit_identical(self):
        mdp = _mdp()
        ref = FunctionalSimulator(mdp, _cfg())
        ref.run(500)

        sim = FunctionalSimulator(mdp, _cfg())
        sim.run(200)
        snap = sim.state_dict()
        sim.run(300)
        interrupted_q = sim.tables.q.data.copy()

        sim.load_state_dict(snap)
        assert sim.stats.samples == 200
        sim.run(300)
        assert np.array_equal(sim.tables.q.data, interrupted_q)
        assert np.array_equal(sim.tables.q.data, ref.tables.q.data)
        assert vars(sim.stats) == vars(ref.stats)

    def test_snapshot_is_isolated_from_live_state(self):
        sim = FunctionalSimulator(_mdp(), _cfg())
        sim.run(50)
        snap = sim.state_dict()
        frozen = snap["tables"]["q"]["data"].copy()
        sim.run(50)
        assert np.array_equal(snap["tables"]["q"]["data"], frozen)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=1, max_value=2**16),
        split=st.integers(min_value=0, max_value=120),
        sarsa=st.booleans(),
    )
    def test_property_restore_replays_any_split(self, seed, split, sarsa):
        """For any (seed, algorithm, checkpoint position): restoring a
        mid-run snapshot and finishing produces the exact Q table and
        stats of the uninterrupted run."""
        mdp = _mdp()
        make = QTAccelConfig.sarsa if sarsa else QTAccelConfig.qlearning
        total = 120
        ref = FunctionalSimulator(mdp, make(seed=seed))
        ref.run(total)

        sim = FunctionalSimulator(mdp, make(seed=seed))
        sim.run(split)
        snap = sim.state_dict()
        sim.run(total - split)  # keep going past the snapshot...
        sim.load_state_dict(snap)  # ...then rewind and replay
        sim.run(total - split)
        assert np.array_equal(sim.tables.q.data, ref.tables.q.data)
        assert sim.arch_state == ref.arch_state
        assert vars(sim.stats) == vars(ref.stats)

    def test_pipeline_checkpoint_at_drained_boundary(self):
        mdp = _mdp()
        ref = QTAccelPipeline(mdp, _cfg())
        ref.run(96)

        pipe = QTAccelPipeline(mdp, _cfg())
        pipe.run(40)
        snap = pipe.state_dict()
        other = QTAccelPipeline(mdp, _cfg())
        other.load_state_dict(snap)
        other.run(56)
        assert np.array_equal(other.tables.q.data, ref.tables.q.data)

    def test_pipeline_rejects_mid_flight_checkpoint(self):
        pipe = QTAccelPipeline(_mdp(), _cfg())
        for _ in range(3):
            pipe.step()
        with pytest.raises(RuntimeError):
            pipe.state_dict()

    def test_batch_restore_is_bit_identical(self):
        mdp = _mdp()
        cfg = _cfg()
        ref = BatchIndependentSimulator(mdp, cfg, num_agents=4)
        ref.run(300)

        sim = BatchIndependentSimulator(mdp, cfg, num_agents=4)
        sim.run(120)
        snap = sim.state_dict()
        sim.run(180)
        sim.load_state_dict(snap)
        sim.run(180)
        assert np.array_equal(sim.q, ref.q)
        assert np.array_equal(sim.qmax, ref.qmax)

    def test_batch_single_lane_restore(self):
        mdp = _mdp()
        sim = BatchIndependentSimulator(mdp, _cfg(), num_agents=3)
        sim.run(100)
        snap = sim.state_dict()
        lane1 = sim.lane_state(1, snap)
        sim.run(100)
        moved = sim.q.copy()
        sim.load_lane_state(1, lane1)
        assert np.array_equal(sim.q[0], moved[0])  # other lanes untouched
        assert np.array_equal(sim.q[2], moved[2])
        assert np.array_equal(sim.q[1], snap["q"][1])

    def test_checkpoint_store_ring(self):
        store = CheckpointStore(capacity=2)
        with pytest.raises(LookupError):
            store.latest()
        store.push("a", {"x": 1})
        store.push("b", {"x": 2})
        store.push("c", {"x": 3})  # evicts "a"
        assert store.tags() == ["b", "c"]
        assert store.latest()[0] == "c"
        assert store.get("b") == {"x": 2}
        with pytest.raises(LookupError):
            store.get("a")


# ---------------------------------------------------------------------- #
# Watchdog + fleet supervisor
# ---------------------------------------------------------------------- #


class TestWatchdog:
    def test_trips_after_patience_without_progress(self):
        dog = Watchdog(patience=2)
        assert dog.beat(1.0)
        assert dog.beat(2.0)
        assert dog.beat(2.0)  # strike 1
        assert not dog.beat(2.0)  # strike 2: expired
        assert dog.expired

    def test_progress_resets_strikes(self):
        dog = Watchdog(patience=2)
        dog.beat(1.0)
        dog.beat(1.0)
        assert dog.beat(2.0)
        assert dog.strikes == 0


class TestFleetSupervisor:
    def _sims(self, n=3):
        mdp = _mdp()
        return [
            FunctionalSimulator(mdp, _cfg(name=f"lane{k}"))
            for k in range(n)
        ]

    def test_clean_fleet_matches_unsupervised(self):
        unsup = self._sims()
        for sim in unsup:
            sim.run(256)
        lanes = SimLanes(self._sims())
        report = FleetSupervisor(lanes, interval=64).run(256)
        assert report.completed
        assert report.retries == 0
        assert report.quarantined == ()
        for a, b in zip(unsup, lanes.sims):
            assert np.array_equal(a.tables.q.data, b.tables.q.data)

    def test_rollback_heals_transient_corruption(self):
        """A one-shot strike on a lane's Qmax-action array is detected by
        the health check, rolled back, and replayed clean — the healed
        fleet finishes bit-identical to an undisturbed one."""
        unsup = self._sims()
        for sim in unsup:
            sim.run(256)

        lanes = SimLanes(self._sims())
        struck = []

        def poison(attempt, chunk):
            if chunk == 1 and attempt == 0:
                lanes.sims[1].tables.qmax_action.write_now(0, 7)  # A=4: illegal
                struck.append(chunk)

        sup = FleetSupervisor(lanes, interval=64, on_chunk=poison)
        report = sup.run(256)
        assert struck == [1]
        assert report.completed
        assert report.retries >= 1
        assert report.quarantined == ()
        for a, b in zip(unsup, lanes.sims):
            assert np.array_equal(a.tables.q.data, b.tables.q.data)

    def test_persistent_corruption_quarantines_lane(self):
        lanes = SimLanes(self._sims())

        def poison(attempt, chunk):
            lanes.sims[2].tables.qmax_action.write_now(0, 9)  # every attempt

        sup = FleetSupervisor(lanes, interval=64, max_retries=1, on_chunk=poison)
        report = sup.run(192)
        assert report.quarantined == (2,)
        assert report.healthy_lanes == 2
        assert report.completed
        # Quarantined lane is parked at its last good checkpoint.
        assert lanes.lane_health(0) and lanes.lane_health(1)

    def test_all_lanes_lost_stops_early(self):
        lanes = SimLanes(self._sims(2))

        def poison(attempt, chunk):
            for sim in lanes.sims:
                sim.tables.qmax_action.write_now(0, 9)

        sup = FleetSupervisor(lanes, interval=32, max_retries=0, on_chunk=poison)
        report = sup.run(320)
        assert report.quarantined == (0, 1)
        assert not report.completed
        assert report.samples_per_lane < 320

    def test_watchdog_aborts_stalled_run(self):
        lanes = SimLanes(self._sims(2))

        def poison(attempt, chunk):
            lanes.sims[0].tables.qmax_action.write_now(0, 9)

        sup = FleetSupervisor(
            lanes,
            interval=32,
            max_retries=0,
            on_chunk=poison,
            watchdog=Watchdog(patience=1),
        )
        report = sup.run(320)
        assert not report.completed or report.quarantined

    def test_batch_lanes_rollback(self):
        mdp = _mdp()
        cfg = _cfg()
        ref = BatchIndependentSimulator(mdp, cfg, num_agents=3)
        ref.run(128)

        sim = BatchIndependentSimulator(mdp, cfg, num_agents=3)
        lanes = BatchLanes(sim)

        def poison(attempt, chunk):
            if chunk == 0 and attempt == 0:
                sim.qmax_action[1, 0] = 11

        report = FleetSupervisor(lanes, interval=64, on_chunk=poison).run(128)
        assert report.completed
        assert report.retries >= 1
        assert np.array_equal(sim.q, ref.q)

    def test_batch_lane_health_detects_invariant_break(self):
        sim = BatchIndependentSimulator(_mdp(), _cfg(), num_agents=2)
        sim.run(64)
        lanes = BatchLanes(sim)
        assert lanes.lane_health(0)
        sim.qmax[1, 0] = np.int64(sim.q[1].reshape(sim.S, sim.A)[0].max() - 1)
        assert not lanes.lane_health(1)


# ---------------------------------------------------------------------- #
# Campaign headline (small-scale) + smoke gate logic
# ---------------------------------------------------------------------- #


class TestCampaignHeadline:
    def test_protected_run_bit_identical_to_clean(self):
        from repro.experiments.fault_campaign import _campaign_run

        mdp = _mdp()
        base = _cfg()
        clean = FunctionalSimulator(mdp, base)
        clean.run(4000)

        sim, injector, scrubber = _campaign_run(
            mdp, base.with_(ecc_tables=True), 4000, 2e-3, fault_seed=11
        )
        assert injector.injected > 0
        assert sim.tables.q.ecc_detected == 0
        assert np.array_equal(sim.tables.q.data, clean.tables.q.data)

    def test_unprotected_run_diverges(self):
        from repro.experiments.fault_campaign import _campaign_run

        mdp = _mdp()
        base = _cfg()
        clean = FunctionalSimulator(mdp, base)
        clean.run(4000)
        sim, injector, _ = _campaign_run(mdp, base, 4000, 2e-3, fault_seed=11)
        assert injector.injected > 0
        assert not np.array_equal(sim.tables.q.data, clean.tables.q.data)

    def test_check_headline_flags_violations(self):
        from repro.experiments.registry import ExperimentResult
        from repro.robustness.smoke import check_headline

        def result(rows):
            return ExperimentResult(
                exp_id="fault_campaign",
                title="t",
                headers=["r", "p", "i", "c", "u", "s", "succ", "rmse", "=c"],
                rows=rows,
            )

        clean = ("0", "none (clean)", 0, None, None, None, 1.0, 0.1, "ref")
        good = ("0.001", "ecc+scrub", 10, 10, 0, 0, 1.0, 0.1, "yes")
        assert check_headline(result([clean, good])) == []

        bad_uncorrectable = ("0.001", "ecc+scrub", 10, 8, 2, 0, 1.0, 0.1, "yes")
        assert check_headline(result([clean, bad_uncorrectable]))

        bad_mismatch = ("0.001", "ecc+scrub", 10, 10, 0, 0, 1.0, 0.1, "no")
        assert check_headline(result([clean, bad_mismatch]))

        bad_success = ("0.001", "ecc+scrub", 10, 10, 0, 0, 0.5, 9.0, "yes")
        assert check_headline(result([clean, bad_success]))

        assert check_headline(result([clean]))  # no protected rows at all
