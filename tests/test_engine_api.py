"""Tests for the unified engine API: ``make_engine``, the ``Engine``
protocol, the shared run-stats contract, and the deprecation shims."""

import warnings

import numpy as np
import pytest

from repro import ENGINE_KINDS, Engine, make_engine
from repro.backends import (
    ScalarFleetBackend,
    ShardedFleetBackend,
    VectorizedFleetBackend,
)
from repro.core.batch import BatchIndependentSimulator, BatchStats
from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.multi_pipeline import IndependentPipelinesCycle, IndependentRunStats
from repro.core.pipeline import QTAccelPipeline
from repro.envs.gridworld import GridWorld

MDP = GridWorld.random(8, 4, obstacle_density=0.1, seed=4).to_mdp()
CFG = QTAccelConfig.qlearning(seed=6, qmax_mode="follow")


class TestMakeEngine:
    def test_kinds_registry(self):
        assert ENGINE_KINDS == (
            "functional", "pipeline", "batch", "vectorized", "sharded", "native"
        )

    @pytest.mark.parametrize(
        "kind,cls,kw",
        [
            ("functional", FunctionalSimulator, {}),
            ("pipeline", QTAccelPipeline, {}),
            ("batch", BatchIndependentSimulator, {"num_agents": 3}),
            ("vectorized", VectorizedFleetBackend, {"num_agents": 3}),
            (
                "sharded",
                ShardedFleetBackend,
                {"num_agents": 3, "num_workers": 2, "mp_context": "fork"},
            ),
        ],
    )
    def test_constructs_each_kind(self, kind, cls, kw):
        engine = make_engine(CFG, engine=kind, mdp=MDP, **kw)
        try:
            assert isinstance(engine, cls)
            assert isinstance(engine, Engine)
            engine.run(40)
            assert engine.stats.samples > 0
            engine.load_state_dict(engine.state_dict())
        finally:
            if hasattr(engine, "close"):
                engine.close()

    def test_default_is_functional(self):
        assert isinstance(make_engine(CFG, mdp=MDP), FunctionalSimulator)

    def test_fleet_backend_passthrough(self):
        scalar = make_engine(
            CFG, engine="batch", mdps=MDP, num_agents=2, backend="scalar"
        )
        assert isinstance(scalar, ScalarFleetBackend)

    def test_matches_direct_construction(self):
        a = make_engine(CFG, mdp=MDP)
        b = FunctionalSimulator(MDP, CFG)
        a.run(200)
        b.run(200)
        assert np.array_equal(a.tables.q.data, b.tables.q.data)

    def test_mdp_and_mdps_interchangeable(self):
        one = make_engine(CFG, mdps=[MDP])  # fleet spelling, scalar engine
        assert isinstance(one, FunctionalSimulator)
        fleet = make_engine(CFG, engine="vectorized", mdp=MDP, num_agents=2)
        assert fleet.K == 2

    def test_error_paths(self):
        with pytest.raises(ValueError, match="engine: unknown value 'gpu'"):
            make_engine(CFG, engine="gpu", mdp=MDP)
        with pytest.raises(TypeError, match="requires an mdp"):
            make_engine(CFG)
        with pytest.raises(TypeError, match="not both"):
            make_engine(CFG, mdp=MDP, mdps=[MDP])
        with pytest.raises(TypeError, match="runs a single world"):
            make_engine(CFG, engine="pipeline", mdps=[MDP, MDP])
        with pytest.raises(TypeError, match="must be a QTAccelConfig"):
            make_engine("qlearning", mdp=MDP)


class TestRunStatsContract:
    def test_functional_stats(self):
        sim = make_engine(CFG, mdp=MDP)
        sim.run(30)
        d = sim.stats.as_dict()
        assert d["samples"] == 30 and d["cycles"] is None
        assert sim.stats.cycles is None

    def test_pipeline_stats(self):
        pipe = make_engine(CFG, engine="pipeline", mdp=MDP)
        pipe.run(30)
        d = pipe.stats.as_dict()
        assert d["samples"] == 30 == pipe.stats.samples
        assert d["cycles"] == pipe.stats.cycles > 0
        # Checkpoints round-trip despite the derived "samples" key.
        pipe.load_state_dict(pipe.state_dict())
        assert pipe.stats.samples == 30

    def test_batch_stats(self):
        fleet = make_engine(CFG, engine="batch", mdps=MDP, num_agents=4)
        fleet.run(25)
        d = fleet.stats.as_dict()
        assert d["samples"] == 100 == fleet.stats.samples
        assert d["cycles"] is None

    def test_independent_run_stats(self):
        multi = IndependentPipelinesCycle([MDP, MDP], CFG)
        stats = multi.run(20)
        assert isinstance(stats, IndependentRunStats)
        d = stats.as_dict()
        assert d["samples"] == stats.samples == 40
        assert d["cycles"] == stats.cycles > 0


class TestDeprecationShims:
    def test_positional_config_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="positional QTAccelConfig"):
            cfg = QTAccelConfig("egreedy", "egreedy")
        assert cfg == QTAccelConfig(update_rule="sarsa")

    def test_stringly_policy_config_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="update_rule"):
            cfg = QTAccelConfig(behavior_policy="egreedy", update_policy="egreedy")
        assert cfg == QTAccelConfig(update_rule="sarsa")

    def test_keyword_config_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            QTAccelConfig(update_rule="qlearning")
            QTAccelConfig(update_rule="sarsa", epsilon=0.25)
            QTAccelConfig()  # defaults name no policies: no shim fires

    def test_too_many_positionals(self):
        with pytest.raises(TypeError, match="at most"):
            QTAccelConfig(*(["random"] * 20))

    def test_positional_keyword_collision(self):
        with pytest.raises(TypeError, match="multiple values"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            QTAccelConfig("random", behavior_policy="random")

    def test_total_samples_alias_warns(self):
        stats = BatchStats(agents=3, samples_per_agent=7)
        with pytest.warns(DeprecationWarning, match="total_samples"):
            assert stats.total_samples == 21

    def test_validation_errors_name_field_and_value(self):
        with pytest.raises(ValueError, match="qmax_mode: unknown value 'bogus'"):
            QTAccelConfig(qmax_mode="bogus")
        with pytest.raises(ValueError, match="update_policy: unknown value 'sarsa'"):
            QTAccelConfig(update_policy="sarsa")


class TestFleetThroughputSweep:
    def test_quick_sweep_records_points(self):
        from repro.perf.fleet import (
            check_min_speedup,
            render_fleet_throughput,
            run_fleet_throughput,
        )

        record = run_fleet_throughput(
            lane_counts=(1, 32), repeats=2, warmup=0, quick=True
        )
        assert set(record["points"]) == {"1", "32"}
        for point in record["points"].values():
            assert point["scalar"]["updates_per_sec"] > 0
            assert point["vectorized"]["updates_per_sec"] > 0
            assert point["speedup"] is not None
        ok, message = check_min_speedup(record, 1e9)
        assert not ok and "n_lanes=32" in message
        text = render_fleet_throughput(record)
        assert "n_lanes" in text and "32" in text

    def test_snapshot_embeds_fleet_record(self, tmp_path):
        from repro.perf import build_snapshot, load_snapshot, run_bench, write_snapshot
        from repro.perf.fleet import run_fleet_throughput

        results = run_bench(cases=["functional"], repeats=1, warmup=0, quick=True)
        record = run_fleet_throughput(lane_counts=(8,), repeats=1, warmup=0, quick=True)
        snap = build_snapshot(results, fleet_throughput=record)
        path = write_snapshot(snap, tmp_path / "BENCH_t.json")
        loaded = load_snapshot(path)
        assert loaded["fleet_throughput"]["points"]["8"]["speedup"] is not None

    def test_cli_fleet_smoke_gate(self, capsys):
        from repro.perf.__main__ import main as perf_main

        assert perf_main(["fleet", "--smoke", "--repeats", "1"]) == 0
        assert perf_main(["fleet", "--smoke", "--repeats", "1", "--min-speedup", "1e9"]) == 1
        out = capsys.readouterr().out
        assert "fleet throughput" in out
