"""Cliff walking: the canonical on-policy vs off-policy validation.

Sutton & Barto §6.5 on the accelerator's fixed-point datapath: trained
to convergence, Q-Learning's greedy policy runs the daring shortest path
along the cliff edge, while SARSA — having learned the value of its own
ε-greedy behaviour, for which edge cells are dangerous — detours above
it.  Reproducing the split end-to-end validates that the two
customisations implement their *algorithms*, not merely their
throughput.
"""

import numpy as np
import pytest

from repro.core import QLearningAccelerator, SarsaAccelerator
from repro.core.metrics import greedy_rollout
from repro.envs.cliff import cliff_mdp, edge_hug_fraction


class TestEnvironment:
    def test_layout(self):
        mdp = cliff_mdp(16, 4)
        enc = mdp.metadata["encoding"]
        assert mdp.metadata["start"] == enc.encode(0, 3)
        assert mdp.metadata["goal"] == enc.encode(15, 3)
        assert len(mdp.metadata["cliff"]) == 14
        assert len(mdp.start_states) == 1

    def test_fall_teleports_to_start(self):
        mdp = cliff_mdp(16, 4)
        enc = mdp.metadata["encoding"]
        above_cliff = enc.encode(5, 2)
        nxt, r, term = mdp.step(above_cliff, 3)  # down, into the cliff
        assert nxt == mdp.metadata["start"]
        assert r == -100.0
        assert not term  # the walk continues from the start

    def test_goal_terminal_and_rewarded(self):
        mdp = cliff_mdp(16, 4)
        enc = mdp.metadata["encoding"]
        nxt, r, term = mdp.step(enc.encode(15, 2), 3)  # down into the goal
        assert term
        assert r == 50.0

    def test_boundary_bumps(self):
        mdp = cliff_mdp(16, 4)
        start = mdp.metadata["start"]
        nxt, r, _ = mdp.step(start, 0)  # left, off the grid
        assert nxt == start
        assert r == -1.0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            cliff_mdp(12, 4)  # not a power of two
        with pytest.raises(ValueError):
            cliff_mdp(2, 4)  # too narrow for a cliff


class TestCanonicalSplit:
    """The textbook behavioural difference, end to end on the datapath.

    α is chosen per algorithm for convergence at a fixed (hardware)
    learning rate: Q-Learning's max-backup tolerates 0.5; SARSA's
    sampled backup at γ=1 needs the smaller 0.125 for its greedy
    extraction to stabilise.
    """

    @pytest.fixture(scope="class")
    def trained(self):
        mdp = cliff_mdp(16, 4)
        ql = QLearningAccelerator(mdp, alpha=0.5, gamma=1.0, seed=7)
        ql.run(500_000)
        sa = SarsaAccelerator(
            mdp, alpha=0.125, gamma=1.0, epsilon=0.1, seed=7, qmax_mode="follow"
        )
        sa.run(1_000_000)
        return mdp, ql, sa

    def test_both_reach_the_goal(self, trained):
        mdp, ql, sa = trained
        start = int(mdp.start_states[0])
        for acc in (ql, sa):
            _, _, ok = greedy_rollout(mdp, acc.q_values(), start, gamma=1.0, max_steps=200)
            assert ok

    def test_qlearning_dares_the_edge(self, trained):
        mdp, ql, _ = trained
        assert edge_hug_fraction(mdp, ql.q_values()) > 0.9

    def test_sarsa_detours(self, trained):
        mdp, _, sa = trained
        assert edge_hug_fraction(mdp, sa.q_values()) < 0.5

    def test_sarsa_path_longer_but_safe(self, trained):
        mdp, ql, sa = trained
        start = int(mdp.start_states[0])
        _, steps_ql, _ = greedy_rollout(mdp, ql.q_values(), start, gamma=1.0, max_steps=200)
        _, steps_sa, _ = greedy_rollout(mdp, sa.q_values(), start, gamma=1.0, max_steps=200)
        assert steps_ql <= steps_sa
        assert steps_ql == 17  # up + 15 right + down, the daring optimum

    def test_qlearning_greedy_return_is_optimal(self, trained):
        mdp, ql, _ = trained
        start = int(mdp.start_states[0])
        ret, _, _ = greedy_rollout(mdp, ql.q_values(), start, gamma=1.0, max_steps=200)
        assert ret == pytest.approx(50.0 - 16.0)  # goal minus 16 step costs
