"""Unit and property tests for the LFSR models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.lfsr import MAXIMAL_TAPS, Lfsr, taps_to_mask


class TestTaps:
    def test_table_covers_paper_widths(self):
        """The widths the accelerator actually instantiates exist."""
        for w in (8, 16, 24, 32):
            assert w in MAXIMAL_TAPS

    def test_mask_includes_degree_term(self):
        for w, taps in MAXIMAL_TAPS.items():
            assert taps_to_mask(w, taps) & (1 << (w - 1))

    def test_mask_rejects_missing_degree(self):
        with pytest.raises(ValueError):
            taps_to_mask(8, (6, 5, 4))

    def test_mask_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            taps_to_mask(8, (9, 8))


@pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16])
def test_full_period(width):
    """Every tabulated polynomial is maximal: period 2**n - 1."""
    lfsr = Lfsr(width, seed=1)
    seen = set()
    for _ in range(lfsr.period):
        seen.add(lfsr.step())
    assert len(seen) == lfsr.period
    assert 0 not in seen
    assert lfsr.state == 1  # returned to the seed after a full period


class TestBasics:
    def test_zero_seed_mapped_to_one(self):
        assert Lfsr(8, seed=0).state == 1

    def test_seed_masked_to_width(self):
        assert Lfsr(8, seed=0x1FF).state == 0xFF

    def test_unknown_width_needs_taps(self):
        with pytest.raises(ValueError):
            Lfsr(37)

    def test_explicit_taps(self):
        lfsr = Lfsr(37, taps=(37, 36, 33, 31))
        assert lfsr.width == 37
        lfsr.step()

    def test_deterministic(self):
        a = Lfsr(16, seed=77)
        b = Lfsr(16, seed=77)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_iterator_protocol(self):
        lfsr = Lfsr(8, seed=3)
        it = iter(Lfsr(8, seed=3))
        assert [next(it) for _ in range(10)] == [lfsr.step() for _ in range(10)]


class TestBatch:
    def test_batch_matches_step(self):
        a = Lfsr(16, seed=5)
        b = Lfsr(16, seed=5)
        batch = a.batch(500)
        singles = [b.step() for _ in range(500)]
        assert list(batch) == singles

    def test_batch_advances_state(self):
        a = Lfsr(16, seed=5)
        a.batch(100)
        b = Lfsr(16, seed=5)
        for _ in range(100):
            b.step()
        assert a.state == b.state

    def test_batch_dtype(self):
        assert Lfsr(24).batch(10).dtype == np.int64


class TestFork:
    def test_fork_decorrelates(self):
        base = Lfsr(16, seed=1)
        f1 = base.fork(1)
        f2 = base.fork(2)
        assert f1.state != f2.state
        s1 = [f1.step() for _ in range(50)]
        s2 = [f2.step() for _ in range(50)]
        assert s1 != s2

    def test_fork_never_zero(self):
        for salt in range(64):
            assert Lfsr(8, seed=1).fork(salt).state != 0


@given(st.integers(min_value=1, max_value=(1 << 16) - 1), st.integers(min_value=1, max_value=200))
@settings(max_examples=50)
def test_state_always_nonzero(seed, steps):
    """An XOR Galois LFSR never enters the all-zeros lock-up (property)."""
    lfsr = Lfsr(16, seed=seed)
    for _ in range(steps):
        assert lfsr.step() != 0


@given(st.integers(min_value=1, max_value=255))
def test_state_stays_in_width(seed):
    lfsr = Lfsr(8, seed=seed)
    for _ in range(300):
        assert 1 <= lfsr.step() <= 255


class TestLeap:
    @pytest.mark.parametrize("d", [1, 3, 8, 16])
    def test_leap_equals_d_steps(self, d):
        a = Lfsr(24, seed=77)
        b = Lfsr(24, seed=77)
        for _ in range(100):
            va = a.leap(d)
            for _ in range(d):
                vb = b.step()
            assert va == vb

    def test_leap_batch_matches_scalar(self):
        a = Lfsr(20, seed=5)
        b = Lfsr(20, seed=5)
        batch = a.leap_batch(50, 8)
        singles = [b.leap(8) for _ in range(50)]
        assert list(batch) == singles

    def test_leap_distance_validated(self):
        with pytest.raises(ValueError):
            Lfsr(16).leap(0)
        with pytest.raises(ValueError):
            Lfsr(16).leap(17)

    def test_leap_table_cached(self):
        a = Lfsr(16, seed=1)
        a.leap(8)
        assert (a.mask, 8) in Lfsr._leap_tables
