"""Tests for the accelerator's on-chip tables and Qmax maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import QTAccelConfig
from repro.core.tables import AcceleratorTables, apply_qmax_rule
from repro.envs.random_mdp import random_dense_mdp


@pytest.fixture
def tables(loopy_mdp):
    return AcceleratorTables(loopy_mdp, QTAccelConfig.qlearning())


class TestAddressing:
    def test_pow2_shift_packing(self, loopy_mdp):
        t = AcceleratorTables(loopy_mdp, QTAccelConfig.qlearning())
        assert t.pair_addr(3, 2) == (3 << 2) | 2

    def test_non_pow2_multiplicative(self):
        mdp = random_dense_mdp(10, 3, seed=1)
        t = AcceleratorTables(mdp, QTAccelConfig.qlearning())
        assert t.pair_addr(4, 2) == 4 * 3 + 2

    def test_all_addresses_unique(self, tables):
        addrs = {
            tables.pair_addr(s, a)
            for s in range(tables.num_states)
            for a in range(tables.num_actions)
        }
        assert len(addrs) == tables.num_states * tables.num_actions


class TestInitialState:
    def test_rewards_preloaded(self, loopy_mdp, tables):
        qf = tables.config.q_format
        for s in (0, 5, 15):
            for a in range(4):
                expect = qf.quantize(loopy_mdp.rewards[s, a])
                assert tables.read_reward(s, a) == expect

    def test_q_init_value(self, loopy_mdp):
        cfg = QTAccelConfig.qlearning(q_init=2.0)
        t = AcceleratorTables(loopy_mdp, cfg)
        assert t.read_q(0, 0) == cfg.q_format.quantize(2.0)
        assert t.read_qmax(0)[0] == cfg.q_format.quantize(2.0)


class TestQmaxRule:
    def test_monotonic_raises(self):
        assert apply_qmax_rule("monotonic", 10, 0, 20, 2) == (20, 2)

    def test_monotonic_never_lowers(self):
        assert apply_qmax_rule("monotonic", 10, 0, 5, 0) == (10, 0)

    def test_follow_tracks_argmax_down(self):
        assert apply_qmax_rule("follow", 10, 1, 5, 1) == (5, 1)

    def test_follow_raises_other_action(self):
        assert apply_qmax_rule("follow", 10, 1, 20, 3) == (20, 3)

    def test_follow_ignores_lower_other_action(self):
        assert apply_qmax_rule("follow", 10, 1, 5, 2) == (10, 1)

    def test_exact_has_no_single_cycle_rule(self):
        with pytest.raises(ValueError):
            apply_qmax_rule("exact", 0, 0, 0, 0)


class TestWriteback:
    def test_monotonic_writeback_now(self, loopy_mdp):
        t = AcceleratorTables(loopy_mdp, QTAccelConfig.qlearning())
        t.writeback_now(3, 1, 100)
        assert t.read_q(3, 1) == 100
        assert t.read_qmax(3) == (100, 1)
        t.writeback_now(3, 1, 50)  # lowered: qmax stays
        assert t.read_q(3, 1) == 50
        assert t.read_qmax(3) == (100, 1)

    def test_follow_writeback_now(self, loopy_mdp):
        cfg = QTAccelConfig.qlearning(qmax_mode="follow")
        t = AcceleratorTables(loopy_mdp, cfg)
        t.writeback_now(3, 1, 100)
        t.writeback_now(3, 1, 50)  # argmax action followed down
        assert t.read_qmax(3) == (50, 1)

    def test_exact_writeback_now(self, loopy_mdp):
        cfg = QTAccelConfig.qlearning(qmax_mode="exact")
        t = AcceleratorTables(loopy_mdp, cfg)
        t.writeback_now(3, 1, 100)
        t.writeback_now(3, 2, 70)
        t.writeback_now(3, 1, 10)  # true max now action 2
        assert t.read_qmax(3) == (70, 2)

    def test_clocked_writeback(self, loopy_mdp):
        t = AcceleratorTables(loopy_mdp, QTAccelConfig.qlearning())
        t.writeback(2, 0, 64)
        assert t.read_q(2, 0) == 0  # staged, not committed
        t.commit()
        assert t.read_q(2, 0) == 64
        assert t.read_qmax(2) == (64, 0)


class TestBulkViews:
    def test_row_q_is_view(self, tables):
        tables.writeback_now(1, 2, 33)
        assert tables.row_q(1)[2] == 33

    def test_q_matrices(self, tables):
        tables.writeback_now(0, 0, 64)
        raw = tables.q_raw_matrix()
        assert raw[0, 0] == 64
        flt = tables.q_float_matrix()
        assert flt[0, 0] == 1.0  # 64 at frac 6

    def test_bram_blocks_egreedy_adds_action_table(self, loopy_mdp):
        ql = AcceleratorTables(loopy_mdp, QTAccelConfig.qlearning())
        sa = AcceleratorTables(loopy_mdp, QTAccelConfig.sarsa())
        assert sa.bram_blocks() >= ql.bram_blocks()


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_monotonic_qmax_invariant(writes):
    """After any write sequence, Qmax[s] >= max_a Q[s,a] (property).

    This is the §V-A soundness argument for Q-Learning: the cached
    maximum can be stale-high but never stale-low, so the greedy target
    never under-estimates.
    """
    mdp = random_dense_mdp(16, 4, seed=0)
    t = AcceleratorTables(mdp, QTAccelConfig.qlearning())
    for s, a, v in writes:
        t.writeback_now(s, a, v)
    assert t.qmax_invariant_holds()


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-1000, max_value=1000),
        ),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_follow_qmax_tracks_written_action(writes):
    """In follow mode, Qmax[s] always equals Q[s, qmax_action[s]] after
    any write to that action (property): the cache never detaches from
    the entry it claims to cache."""
    mdp = random_dense_mdp(8, 4, seed=0)
    t = AcceleratorTables(mdp, QTAccelConfig.qlearning(qmax_mode="follow"))
    for s, a, v in writes:
        t.writeback_now(s, a, v)
        act = int(t.qmax_action.data[s])
        assert t.qmax.data[s] == t.row_q(s)[act]
