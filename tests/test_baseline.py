"""Tests for the baseline-design model (Da Silva et al. [11])."""

import numpy as np
import pytest

from repro.baseline import (
    FSM_CYCLES_PER_UPDATE,
    FsmQLearningAccelerator,
    baseline_max_states,
    baseline_multipliers,
    baseline_report,
    baseline_throughput_msps,
)
from repro.core.config import QTAccelConfig
from repro.core.metrics import success_rate
from repro.device.parts import XC6VLX240T, XC7VX690T
from repro.envs.random_mdp import chain_mdp


class TestBehaviouralModel:
    def test_learns_chain(self):
        mdp = chain_mdp(5, reward=100.0)
        acc = FsmQLearningAccelerator(mdp, QTAccelConfig.qlearning(seed=1, gamma=0.5))
        acc.run(20_000)
        q = acc.q_float()
        assert np.argmax(q[0]) == 0

    def test_learns_grid(self, grid8):
        acc = FsmQLearningAccelerator(grid8, QTAccelConfig.qlearning(seed=3))
        acc.run(100_000)
        assert success_rate(grid8, acc.q_float(), gamma=0.9) > 0.9

    def test_cycles_accounting(self, grid8):
        acc = FsmQLearningAccelerator(grid8)
        acc.run(100)
        assert acc.stats.cycles == 100 * FSM_CYCLES_PER_UPDATE

    def test_uses_true_max_not_qmax_cache(self):
        """The comparator tree reads actual entries, so lowering the
        maximum is reflected immediately (unlike monotonic Qmax)."""
        mdp = chain_mdp(3)
        acc = FsmQLearningAccelerator(mdp, QTAccelConfig.qlearning(seed=1))
        acc.q[1, :] = 100
        acc.q[1, 0] = 100  # max 100
        acc.q[1, :] = [10, 5]  # lower it
        assert int(acc.q[1].max()) == 10

    def test_rejects_sarsa_config(self, grid8):
        with pytest.raises(ValueError):
            FsmQLearningAccelerator(grid8, QTAccelConfig.sarsa())


class TestScalingModel:
    def test_multipliers_equal_pairs(self):
        assert baseline_multipliers(132, 4) == 528
        assert baseline_multipliers(12, 8) == 96

    def test_report_percentages(self):
        rep = baseline_report(132, 4)
        assert rep.dsp == 528
        assert 0 < rep.dsp_pct < 100
        assert rep.fits

    def test_calibration_saturates_v6_near_132(self):
        """The paper: 132 states x 4 actions 'fully utilized' the
        Virtex-6; the calibrated model's bound lands within 10 states."""
        assert abs(baseline_max_states(4, part=XC6VLX240T) - 132) <= 10

    def test_max_states_scales_with_device(self):
        assert baseline_max_states(4, part=XC7VX690T) > baseline_max_states(4, part=XC6VLX240T)

    def test_throughput_order_of_magnitude(self):
        """~12.5 MS/s: the >15x deficit against QTAccel's 180+."""
        msps = baseline_throughput_msps()
        assert 8 < msps < 20

    def test_oversized_design_does_not_fit(self):
        assert not baseline_report(1000, 4).fits
