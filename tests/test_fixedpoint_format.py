"""Unit and property tests for repro.fixedpoint.format."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.format import COEF_FORMAT, Q_FORMAT, FxpFormat


class TestConstruction:
    def test_default_q_format(self):
        assert Q_FORMAT.wordlen == 16
        assert Q_FORMAT.frac == 6
        assert Q_FORMAT.signed

    def test_coef_format_represents_one(self):
        assert COEF_FORMAT.quantize(1.0) == 1 << COEF_FORMAT.frac

    def test_rejects_zero_wordlen(self):
        with pytest.raises(ValueError):
            FxpFormat(wordlen=0, frac=0)

    def test_rejects_signed_single_bit(self):
        with pytest.raises(ValueError):
            FxpFormat(wordlen=1, frac=0, signed=True)

    def test_unsigned_single_bit_allowed(self):
        f = FxpFormat(wordlen=1, frac=0, signed=False)
        assert f.raw_min == 0
        assert f.raw_max == 1

    def test_rejects_unknown_rounding(self):
        with pytest.raises(ValueError):
            FxpFormat(wordlen=8, frac=4, rounding="stochastic")

    def test_rejects_unknown_overflow(self):
        with pytest.raises(ValueError):
            FxpFormat(wordlen=8, frac=4, overflow="explode")


class TestRanges:
    def test_signed_range(self):
        f = FxpFormat(wordlen=8, frac=4)
        assert f.raw_min == -128
        assert f.raw_max == 127
        assert f.min_value == -8.0
        assert f.max_value == 127 / 16

    def test_unsigned_range(self):
        f = FxpFormat(wordlen=8, frac=8, signed=False)
        assert f.raw_min == 0
        assert f.raw_max == 255
        assert f.max_value == pytest.approx(255 / 256)

    def test_resolution(self):
        assert FxpFormat(wordlen=16, frac=6).resolution == 1 / 64

    def test_negative_frac_coarse_grid(self):
        f = FxpFormat(wordlen=8, frac=-2)
        assert f.resolution == 4.0
        assert f.quantize(9.0) == 2  # floor(9/4)

    def test_int_bits(self):
        assert FxpFormat(wordlen=16, frac=6).int_bits == 9

    def test_q_format_covers_paper_rewards(self):
        assert Q_FORMAT.min_value <= -255
        assert Q_FORMAT.max_value >= 255


class TestQuantize:
    def test_exact_values(self):
        f = FxpFormat(wordlen=16, frac=6)
        assert f.quantize(1.0) == 64
        assert f.quantize(-2.5) == -160

    def test_truncate_rounds_toward_minus_inf(self):
        f = FxpFormat(wordlen=16, frac=0, rounding="truncate")
        assert f.quantize(1.9) == 1
        assert f.quantize(-1.1) == -2

    def test_nearest_rounds_half_away(self):
        f = FxpFormat(wordlen=16, frac=0, rounding="nearest")
        assert f.quantize(1.5) == 2
        assert f.quantize(-1.5) == -2
        assert f.quantize(1.4) == 1

    def test_saturation_positive(self):
        f = FxpFormat(wordlen=8, frac=0)
        assert f.quantize(1000.0) == 127

    def test_saturation_negative(self):
        f = FxpFormat(wordlen=8, frac=0)
        assert f.quantize(-1000.0) == -128

    def test_wrap_overflow(self):
        f = FxpFormat(wordlen=8, frac=0, overflow="wrap")
        assert f.quantize(128.0) == -128
        assert f.quantize(256.0) == 0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Q_FORMAT.quantize(float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            Q_FORMAT.quantize(float("inf"))


class TestRshiftRound:
    def test_zero_shift_identity(self):
        assert Q_FORMAT.rshift_round(12345, 0) == 12345

    def test_truncate_shift(self):
        f = FxpFormat(wordlen=16, frac=6, rounding="truncate")
        assert f.rshift_round(7, 2) == 1
        assert f.rshift_round(-7, 2) == -2  # arithmetic shift

    def test_nearest_shift(self):
        f = FxpFormat(wordlen=16, frac=6, rounding="nearest")
        assert f.rshift_round(6, 2) == 2  # 1.5 -> 2
        assert f.rshift_round(-6, 2) == -2

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            Q_FORMAT.rshift_round(1, -1)


@given(st.floats(min_value=-500.0, max_value=500.0, allow_nan=False))
def test_roundtrip_within_lsb(value):
    """quantize -> to_float never errs by more than one LSB (property)."""
    raw = Q_FORMAT.quantize(value)
    back = Q_FORMAT.to_float(raw)
    assert abs(back - value) <= Q_FORMAT.resolution


@given(
    st.integers(min_value=-(1 << 20), max_value=1 << 20),
    st.integers(min_value=2, max_value=32),
    st.integers(min_value=0, max_value=16),
)
def test_clamp_raw_idempotent_and_in_range(raw, wordlen, frac):
    f = FxpFormat(wordlen=wordlen, frac=frac)
    clamped = f.clamp_raw(raw)
    assert f.raw_min <= clamped <= f.raw_max
    assert f.clamp_raw(clamped) == clamped


@given(
    st.integers(min_value=-(1 << 30), max_value=1 << 30),
    st.integers(min_value=1, max_value=20),
)
def test_rshift_round_matches_float_division(raw, shift):
    """Truncating shift equals floor division (property)."""
    f = FxpFormat(wordlen=48, frac=0, rounding="truncate")
    assert f.rshift_round(raw, shift) == math.floor(raw / (1 << shift))


@given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_coef_quantize_monotone(x):
    """Coefficient quantisation preserves ordering vs 0.5 (property)."""
    a = COEF_FORMAT.quantize(x)
    b = COEF_FORMAT.quantize(0.5)
    if x > 0.5:
        assert a >= b
    elif x < 0.5:
        assert a <= b


def test_with_replaces_fields():
    f = Q_FORMAT.with_(rounding="nearest")
    assert f.rounding == "nearest"
    assert f.wordlen == Q_FORMAT.wordlen


def test_describe_mentions_range():
    s = Q_FORMAT.describe()
    assert "s16.6" in s
    assert "-512" in s
