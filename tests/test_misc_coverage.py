"""Targeted tests for smaller public surfaces not covered elsewhere."""

import numpy as np
import pytest

from repro.core.accelerator import QTAccelAccelerator
from repro.core.config import QTAccelConfig
from repro.envs.base import DenseMdp
from repro.envs.gridworld import GridWorld, GridWorldSpec
from repro.envs.random_mdp import chain_mdp
from repro.experiments.cases import (
    FIG6_THROUGHPUT_MSPS,
    STATE_SIZES,
    TABLE2_CPU_SPS,
    grid_side,
)


class TestCases:
    def test_grid_side(self):
        assert grid_side(64) == 8
        assert grid_side(262144) == 512

    def test_grid_side_rejects_non_square(self):
        with pytest.raises(ValueError):
            grid_side(120)

    def test_reference_tables_cover_all_sizes(self):
        assert set(FIG6_THROUGHPUT_MSPS) <= set(STATE_SIZES)
        for s, a in TABLE2_CPU_SPS:
            assert s in STATE_SIZES
            assert a in (4, 8)


class TestGridWorldSpec:
    def test_spec_recorded(self):
        w = GridWorld.empty(8, step_reward=-1.0)
        assert w.spec == GridWorldSpec(8, 4, 255.0, -255.0, -1.0)

    def test_spec_in_metadata(self):
        md = GridWorld.empty(8).to_mdp().metadata
        assert md["spec"].side == 8


class TestOptimalQ:
    def test_converges_quickly_on_chain(self):
        mdp = chain_mdp(8)
        q1 = mdp.optimal_q(0.9)
        q2 = mdp.optimal_q(0.9, tol=1e-12)
        assert np.allclose(q1, q2, atol=1e-6)

    def test_max_iter_cap_returns(self):
        mdp = chain_mdp(8)
        q = mdp.optimal_q(0.9, max_iter=3)  # truncated but defined
        assert q.shape == (8, 2)

    def test_gamma_zero_is_reward_table(self):
        mdp = chain_mdp(5, reward=42.0)
        q = mdp.optimal_q(0.0)
        nonterm = ~mdp.terminal
        assert np.allclose(q[nonterm], mdp.rewards[nonterm])


class TestBaseAccelerator:
    def test_generic_class_usable_directly(self, empty16):
        acc = QTAccelAccelerator(empty16, QTAccelConfig.qlearning(seed=2))
        acc.run(100)
        assert acc.samples_processed == 100

    def test_tables_none_before_run(self, empty16):
        acc = QTAccelAccelerator(empty16, QTAccelConfig.qlearning())
        assert acc.tables is None

    def test_run_result_cycles_per_sample_none_for_functional(self, empty16):
        acc = QTAccelAccelerator(empty16, QTAccelConfig.qlearning(seed=2))
        res = acc.run(50)
        assert res.cycles_per_sample is None


class TestDenseMdpMetadata:
    def test_metadata_default_dict(self):
        mdp = DenseMdp(
            next_state=np.zeros((2, 2), dtype=np.int32),
            rewards=np.zeros((2, 2)),
            terminal=np.array([False, True]),
            start_states=np.array([0]),
        )
        assert mdp.metadata == {}
        mdp.metadata["k"] = 1  # mutable per instance

    def test_greedy_policy_dtype(self):
        mdp = chain_mdp(4)
        pol = mdp.greedy_policy(mdp.optimal_q(0.9))
        assert pol.dtype == np.int32
