"""Tests for the vectorised LFSR banks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.lfsr import Lfsr
from repro.rtl.lfsr_batch import LfsrBank


class TestLaneParity:
    def test_step_all_matches_scalars(self):
        seeds = [1, 7, 1000, 0xFFFF]
        bank = LfsrBank(24, seeds)
        scalars = [Lfsr(24, seed=s) for s in seeds]
        for _ in range(200):
            states = bank.step_all()
            for k, lfsr in enumerate(scalars):
                assert int(states[k]) == lfsr.step()

    def test_step_where_holds_masked_lanes(self):
        bank = LfsrBank(16, [3, 5])
        scalar = Lfsr(16, seed=3)
        mask = np.array([True, False])
        before_lane1 = int(bank.states[1])
        states = bank.step_where(mask)
        assert int(states[0]) == scalar.step()
        assert int(states[1]) == before_lane1

    def test_masked_stream_parity(self):
        """A lane stepped through an arbitrary mask schedule matches a
        scalar stepped the same number of times."""
        rng = np.random.default_rng(4)
        bank = LfsrBank(20, [11, 22, 33])
        scalars = [Lfsr(20, seed=s) for s in (11, 22, 33)]
        for _ in range(300):
            mask = rng.random(3) < 0.5
            bank.step_where(mask)
            for k in range(3):
                if mask[k]:
                    scalars[k].step()
        for k in range(3):
            assert int(bank.states[k]) == scalars[k].state


class TestSeeding:
    def test_zero_seed_remapped(self):
        bank = LfsrBank(8, [0, 5])
        assert int(bank.states[0]) == 1  # same remap as the scalar Lfsr

    def test_seed_masked_to_width(self):
        bank = LfsrBank(8, [0x1FF])
        assert int(bank.states[0]) == 0xFF

    def test_unknown_width_rejected(self):
        with pytest.raises(ValueError):
            LfsrBank(37, [1])


class TestReductions:
    def test_below_matches_scalar_rule(self):
        from repro.rtl.rng import DECIMATION, UniformSource

        bank = LfsrBank(16, [9])
        src = UniformSource(Lfsr(16, seed=9))
        for m in (4, 8, 5, 7):
            assert int(bank.below(m, DECIMATION)[0]) == src.below(m)

    def test_draw_where_matches_scalar_draws(self):
        from repro.rtl.rng import DECIMATION, UniformSource

        bank = LfsrBank(16, [9, 10])
        srcs = [UniformSource(Lfsr(16, seed=s)) for s in (9, 10)]
        import numpy as np

        mask = np.array([True, False])
        drawn = bank.draw_where(mask, DECIMATION)
        assert int(drawn[0]) == srcs[0].bits()
        assert int(bank.states[1]) == srcs[1].lfsr.state  # untouched

    def test_lane_extraction(self):
        bank = LfsrBank(16, [3, 4])
        bank.step_all()
        lane0 = bank.lane(0)
        ref = Lfsr(16, seed=3)
        ref.step()
        assert lane0.state == ref.state


@given(
    seeds=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), min_size=1, max_size=8),
    steps=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_bank_parity_property(seeds, steps):
    bank = LfsrBank(20, seeds)
    scalars = [Lfsr(20, seed=s) for s in seeds]
    for _ in range(steps):
        bank.step_all()
        for lfsr in scalars:
            lfsr.step()
    assert [int(x) for x in bank.states] == [l.state for l in scalars]
