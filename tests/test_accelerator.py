"""Tests for the user-facing accelerator API."""

import numpy as np
import pytest

from repro.core.accelerator import QLearningAccelerator, SarsaAccelerator
from repro.device.parts import XC7VX690T


class TestEngines:
    def test_functional_default(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        res = acc.run(500)
        assert res.engine == "functional"
        assert res.samples == 500
        assert res.cycles is None

    def test_cycle_engine_reports_cycles(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        res = acc.run(500, engine="cycle")
        assert res.cycles == 503
        assert res.cycles_per_sample == pytest.approx(1.006)

    def test_engine_switch_rejected(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        acc.run(10)
        with pytest.raises(RuntimeError):
            acc.run(10, engine="cycle")

    def test_reset_allows_switch(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        acc.run(10)
        acc.reset()
        acc.run(10, engine="cycle")
        assert acc.samples_processed == 10

    def test_unknown_engine(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        with pytest.raises(ValueError):
            acc.run(10, engine="verilog")

    def test_engines_agree(self, grid8):
        a = QLearningAccelerator(grid8, seed=5)
        b = QLearningAccelerator(grid8, seed=5)
        a.run(1500, engine="functional")
        b.run(1500, engine="cycle")
        assert np.array_equal(a.q_values(), b.q_values())


class TestStateViews:
    def test_q_values_before_run(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        assert acc.q_values().shape == (256, 4)
        assert not acc.q_values().any()

    def test_policy_shape(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        acc.run(1000)
        pol = acc.policy()
        assert pol.shape == (256,)
        assert pol.min() >= 0 and pol.max() < 4

    def test_counters(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        acc.run(1000)
        acc.run(500)
        assert acc.samples_processed == 1500
        assert acc.episodes_completed >= 0

    def test_convergence_report(self, grid8):
        acc = QLearningAccelerator(grid8, seed=5)
        acc.run(50_000)
        rep = acc.convergence()
        assert rep.success > 0.9


class TestDeviceViews:
    def test_resource_report(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        rep = acc.resource_report()
        assert rep.dsp == 4
        assert rep.fits

    def test_alternate_part(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3, part=XC7VX690T)
        assert acc.resource_report().part.name == "xc7vx690t"

    def test_throughput_uses_measured_cps(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        acc.run(500, engine="cycle")
        est = acc.throughput_estimate()
        assert est.cycles_per_sample == pytest.approx(1.006)
        assert 150 < est.msps < 200

    def test_throughput_default_cps(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        assert acc.throughput_estimate().cycles_per_sample == 1.0

    def test_power_positive(self, empty16):
        acc = QLearningAccelerator(empty16, seed=3)
        assert acc.power_estimate_mw() > 0


class TestSarsaAccelerator:
    def test_config(self, empty16):
        acc = SarsaAccelerator(empty16, epsilon=0.3, seed=2)
        assert acc.config.algorithm == "sarsa"
        assert acc.config.epsilon == 0.3

    def test_runs(self, empty16):
        acc = SarsaAccelerator(empty16, seed=2, qmax_mode="follow")
        res = acc.run(2000)
        assert res.samples == 2000
