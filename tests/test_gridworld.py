"""Tests for the grid-world environment (§VI-A/B semantics)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.envs.base import action_vectors
from repro.envs.gridworld import GridWorld


class TestConstruction:
    def test_default_goal_bottom_right(self):
        w = GridWorld.empty(8)
        assert w.goal == (7, 7)

    def test_rejects_goal_on_obstacle(self):
        with pytest.raises(ValueError):
            GridWorld(8, 4, goal=(1, 1), obstacles={(1, 1)})

    def test_rejects_obstacle_outside(self):
        with pytest.raises(ValueError):
            GridWorld(8, 4, obstacles={(9, 0)})

    def test_rejects_bad_action_count(self):
        with pytest.raises(ValueError):
            GridWorld.empty(8, 6)

    def test_random_respects_density(self):
        w = GridWorld.random(16, 4, obstacle_density=0.2, seed=1)
        assert 0 < len(w.obstacles) < 16 * 16 * 0.35

    def test_random_zero_density(self):
        assert GridWorld.random(8, 4, obstacle_density=0.0).obstacles == frozenset()


class TestTransitions:
    def test_free_move(self):
        mdp = GridWorld.empty(8).to_mdp()
        enc = GridWorld.empty(8).encoding
        s = enc.encode(3, 3)
        # action 2 = right
        assert mdp.next_state[s, 2] == enc.encode(4, 3)

    def test_wall_blocks_and_penalises(self):
        w = GridWorld.empty(8)
        mdp = w.to_mdp()
        s = w.encoding.encode(0, 3)
        # action 0 = left, off the grid
        assert mdp.next_state[s, 0] == s
        assert mdp.rewards[s, 0] == w.spec.wall_penalty

    def test_obstacle_blocks(self):
        w = GridWorld(8, 4, obstacles={(4, 3)})
        mdp = w.to_mdp()
        s = w.encoding.encode(3, 3)
        assert mdp.next_state[s, 2] == s
        assert mdp.rewards[s, 2] == w.spec.wall_penalty

    def test_goal_entry_rewarded_and_terminal(self):
        w = GridWorld.empty(8)
        mdp = w.to_mdp()
        s = w.encoding.encode(6, 7)
        g = w.encoding.encode(7, 7)
        assert mdp.next_state[s, 2] == g
        assert mdp.rewards[s, 2] == w.spec.goal_reward
        assert mdp.terminal[g]

    def test_step_reward_default_zero(self):
        w = GridWorld.empty(8)
        mdp = w.to_mdp()
        s = w.encoding.encode(3, 3)
        assert mdp.rewards[s, 2] == 0.0

    def test_custom_step_reward(self):
        w = GridWorld.empty(8, step_reward=-1.0)
        mdp = w.to_mdp()
        s = w.encoding.encode(3, 3)
        assert mdp.rewards[s, 2] == -1.0

    def test_obstacle_cells_self_loop(self):
        w = GridWorld(8, 4, obstacles={(2, 2)})
        mdp = w.to_mdp()
        s = w.encoding.encode(2, 2)
        assert np.all(mdp.next_state[s] == s)
        assert np.all(mdp.rewards[s] == 0.0)
        assert s not in set(mdp.start_states.tolist())

    def test_eight_action_diagonal(self):
        w = GridWorld.empty(8, 8)
        mdp = w.to_mdp()
        s = w.encoding.encode(3, 3)
        # action 3 = top-right: (+1, -1)
        assert mdp.next_state[s, 3] == w.encoding.encode(4, 2)


class TestStartStates:
    def test_exclude_goal_and_obstacles(self):
        w = GridWorld(4, 4, obstacles={(0, 1), (2, 2)})
        mdp = w.to_mdp()
        starts = set(mdp.start_states.tolist())
        assert w.encoding.encode(0, 1) not in starts
        assert w.encoding.encode(2, 2) not in starts
        assert w.encoding.encode(*w.goal) not in starts

    def test_unreachable_pockets_excluded(self):
        # Wall off the top-left cell completely (4-action world).
        w = GridWorld(4, 4, obstacles={(1, 0), (0, 1), (1, 1)})
        mdp = w.to_mdp()
        assert w.encoding.encode(0, 0) not in set(mdp.start_states.tolist())

    def test_empty_grid_all_free_start(self):
        mdp = GridWorld.empty(4).to_mdp()
        assert len(mdp.start_states) == 15  # 16 minus the goal


class TestMdpCache:
    def test_to_mdp_cached(self):
        w = GridWorld.empty(8)
        assert w.to_mdp() is w.to_mdp()

    def test_metadata(self):
        w = GridWorld.empty(8)
        md = w.to_mdp().metadata
        assert md["goal"] == (7, 7)
        assert md["encoding"].num_states == 64


class TestRender:
    def test_plain_render(self):
        w = GridWorld(4, 4, obstacles={(1, 1)})
        out = w.render()
        assert "G" in out and "#" in out
        assert len(out.splitlines()) == 4

    def test_policy_render(self):
        w = GridWorld.empty(4)
        pol = np.full(16, 2, dtype=np.int32)  # all "right"
        out = w.render(pol)
        assert ">" in out


@given(
    side=st.sampled_from([4, 8, 16]),
    actions=st.sampled_from([4, 8]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=25, deadline=None)
def test_gridworld_invariants(side, actions, seed):
    """Structural invariants of any generated world (property):

    * transitions stay inside the state space;
    * a blocked move (self-transition) always carries the wall penalty on
      non-obstacle cells, and moves are blocked iff they self-transition;
    * rewards take only the three values {penalty, step, goal}.
    """
    w = GridWorld.random(side, actions, obstacle_density=0.2, seed=seed)
    try:
        mdp = w.to_mdp()
    except ValueError:
        assume(False)  # degenerate map: goal unreachable from everywhere
        return
    n = mdp.num_states
    assert mdp.next_state.min() >= 0 and mdp.next_state.max() < n

    vectors = action_vectors(actions)
    enc = w.encoding
    obstacle_codes = {enc.encode(x, y) for x, y in w.obstacles}
    allowed = {w.spec.wall_penalty, w.spec.step_reward, w.spec.goal_reward}
    assert set(np.unique(mdp.rewards)).issubset(allowed)

    states = np.arange(n)
    self_loop = mdp.next_state == states[:, None]
    for s in range(0, n, max(1, n // 40)):
        if s in obstacle_codes:
            continue
        x, y = enc.decode(s)
        for a, (dx, dy) in enumerate(vectors):
            tgt_in = 0 <= x + dx < side and 0 <= y + dy < side
            tgt_obst = tgt_in and enc.encode(x + dx, y + dy) in obstacle_codes
            blocked = (not tgt_in) or tgt_obst
            assert bool(self_loop[s, a]) == blocked
            if blocked:
                assert mdp.rewards[s, a] == w.spec.wall_penalty
