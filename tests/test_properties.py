"""Cross-cutting property tests over whole engines.

These stress invariants that hold for *any* configuration of the
accelerator, sampled by hypothesis — the safety net under the targeted
unit tests.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.metrics import convergence_report
from repro.core.pipeline import QTAccelPipeline
from repro.envs.gridworld import GridWorld
from repro.envs.random_mdp import random_dense_mdp

GRID = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()

configs = st.builds(
    lambda alg, alpha, gamma, eps, seed, qm: (
        QTAccelConfig.qlearning if alg == "ql" else QTAccelConfig.sarsa
    )(alpha=alpha, gamma=gamma, epsilon=eps, seed=seed, qmax_mode=qm),
    alg=st.sampled_from(["ql", "sarsa"]),
    alpha=st.sampled_from([0.125, 0.5, 1.0]),
    gamma=st.sampled_from([0.0, 0.5, 0.9]),
    eps=st.sampled_from([0.0, 0.2, 0.9]),
    seed=st.integers(min_value=1, max_value=10_000),
    qm=st.sampled_from(["monotonic", "follow"]),
)


@given(cfg=configs)
@settings(max_examples=25, deadline=None)
def test_q_values_stay_in_format(cfg):
    """No update can escape the storage format's representable range."""
    sim = FunctionalSimulator(GRID, cfg)
    sim.run(400)
    qf = cfg.q_format
    assert sim.tables.q.data.min() >= qf.raw_min
    assert sim.tables.q.data.max() <= qf.raw_max
    assert sim.tables.qmax.data.min() >= qf.raw_min
    assert sim.tables.qmax.data.max() <= qf.raw_max


@given(cfg=configs)
@settings(max_examples=20, deadline=None)
def test_episode_count_matches_terminal_entries(cfg):
    """Episodes == number of trace records whose transition is terminal."""
    sim = FunctionalSimulator(GRID, cfg)
    trace = sim.enable_trace()
    sim.run(400)
    terminal_entries = sum(
        bool(GRID.terminal[GRID.next_state[s, a]]) for _, s, a, _ in trace
    )
    assert sim.stats.episodes == terminal_entries


@given(cfg=configs)
@settings(max_examples=15, deadline=None)
def test_pipeline_trace_contiguous_and_valid(cfg):
    """Retirement order is issue order; every record is a legal pair."""
    pipe = QTAccelPipeline(GRID, cfg)
    trace = pipe.enable_trace()
    pipe.run(300)
    assert [t[0] for t in trace] == list(range(300))
    for _, s, a, _ in trace:
        assert 0 <= s < GRID.num_states
        assert 0 <= a < GRID.num_actions
        assert not GRID.terminal[s]  # terminals are never acted from


@given(
    cfg=configs,
    mdp_seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=15, deadline=None)
def test_actions_only_from_action_space(cfg, mdp_seed):
    mdp = random_dense_mdp(12, 4, seed=mdp_seed)
    sim = FunctionalSimulator(mdp, cfg)
    trace = sim.enable_trace()
    sim.run(300)
    assert all(0 <= a < 4 for _, _, a, _ in trace)


@given(seed=st.integers(min_value=1, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_convergence_metrics_bounded(seed):
    sim = FunctionalSimulator(GRID, QTAccelConfig.qlearning(seed=seed))
    sim.run(3000)
    rep = convergence_report(GRID, sim.q_float(), gamma=0.9, samples=3000)
    assert 0.0 <= rep.agreement <= 1.0
    assert 0.0 <= rep.success <= 1.0
    assert rep.rmse >= 0.0


@given(cfg=configs, n1=st.integers(min_value=1, max_value=200))
@settings(max_examples=15, deadline=None)
def test_run_splitting_invariant(cfg, n1):
    """run(a); run(b) == run(a + b) — no state leaks across run calls."""
    total = 300
    split = FunctionalSimulator(GRID, cfg)
    split.run(n1 % total)
    split.run(total - (n1 % total))
    whole = FunctionalSimulator(GRID, cfg)
    whole.run(total)
    assert np.array_equal(split.tables.q.data, whole.tables.q.data)


@given(
    eps=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=1, max_value=500),
)
@settings(max_examples=15, deadline=None)
def test_exploit_rate_tracks_epsilon(eps, seed):
    """Measured exploitation fraction stays near 1 - epsilon."""
    cfg = QTAccelConfig.sarsa(epsilon=eps, seed=seed)
    sim = FunctionalSimulator(GRID, cfg)
    sim.run(2000)
    frac = sim.stats.exploits / 2000
    assert abs(frac - (1.0 - eps)) < 0.06
