"""Tests for the experiment CLI and result formatting."""

import pytest

from repro.experiments.registry import ExperimentResult
from repro.experiments.runner import main


class TestFormat:
    def _result(self, **kw):
        defaults = dict(
            exp_id="demo",
            title="Demo",
            headers=["a", "value"],
            rows=[("x", 1.5), ("longer-label", 12345.0)],
        )
        defaults.update(kw)
        return ExperimentResult(**defaults)

    def test_header_and_rows_aligned(self):
        text = self._result().format()
        lines = text.splitlines()
        assert lines[0] == "== demo: Demo =="
        widths = {len(line) for line in lines[1:4]}
        assert len(widths) == 1  # header, separator, rows share width

    def test_none_rendered_as_dash(self):
        text = self._result(rows=[("x", None)]).format()
        assert "| -" in text

    def test_float_formatting(self):
        text = self._result(rows=[("x", 0.123456), ("y", 12.345), ("z", 1234567.0)]).format()
        assert "0.123" in text
        assert "12.3" in text
        assert "1,234,567" in text

    def test_notes_appended(self):
        text = self._result(notes=["hello world"]).format()
        assert text.splitlines()[-1] == "note: hello world"

    def test_zero_rendered(self):
        text = self._result(rows=[("x", 0.0)]).format()
        assert "| 0" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "table2" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_one_quick(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "BRAM utilisation" in out
        assert "78.1" in out  # the paper's peak value column

    def test_unknown_experiment(self, capsys):
        assert main(["fig99", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_multiple_targets(self, capsys):
        assert main(["table1", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "table1:" in out and "fig7:" in out


class TestFailSoft:
    """One broken experiment must not abort the rest of a sweep."""

    def _register_boom(self, monkeypatch):
        from repro.experiments import registry

        registry._load_all()

        def boom(*, quick=False):
            raise RuntimeError("synthetic experiment failure")

        monkeypatch.setitem(registry._REGISTRY, "boom", ("Boom", boom))

    def test_failure_continues_and_exits_nonzero(self, monkeypatch, capsys):
        self._register_boom(monkeypatch)
        assert main(["boom", "fig4", "--quick"]) == 1
        captured = capsys.readouterr()
        assert "synthetic experiment failure" in captured.err
        assert "Traceback" in captured.err
        assert "78.1" in captured.out  # fig4 still ran after the failure
        assert "ERROR" in captured.out

    def test_fail_fast_aborts_immediately(self, monkeypatch, capsys):
        self._register_boom(monkeypatch)
        assert main(["boom", "fig4", "--quick", "--fail-fast"]) == 1
        captured = capsys.readouterr()
        assert "synthetic experiment failure" in captured.err
        assert "78.1" not in captured.out  # fig4 never ran

    def test_fail_fast_on_unknown_id(self, capsys):
        assert main(["fig99", "fig4", "--quick", "--fail-fast"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment" in captured.err
        assert "78.1" not in captured.out

    def test_error_artifact_written(self, monkeypatch, tmp_path, capsys):
        self._register_boom(monkeypatch)
        assert main(["boom", "--quick", "--output", str(tmp_path)]) == 1
        capsys.readouterr()
        text = (tmp_path / "boom.txt").read_text()
        assert "ERROR" in text
        assert "synthetic experiment failure" in text


class TestOutputDir:
    def test_artifacts_written(self, tmp_path, capsys):
        assert main(["fig4", "fig7", "--quick", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "fig4.txt").exists()
        assert "78.1" in (tmp_path / "fig4.txt").read_text()
        assert (tmp_path / "fig7.txt").exists()
