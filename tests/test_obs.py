"""Tests for the observability layer (`repro.obs`).

The centerpiece is the span-tree integrity property: *any* well-formed
usage of the tracing API — nested spans, cross-"wire" propagation,
spans adopted from another process's ring — yields a span set in which
every span's parent chain reaches a root of the same trace and no span
outlives its trace root.  ``validate_span_tree`` pins exactly that, so
the property doubles as a proof that the validator accepts everything
the API can legally produce; the corruption tests prove it rejects
what it should.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.collector import (
    chrome_trace,
    merge_spans,
    validate_chrome_trace,
    validate_span_tree,
    write_chrome_trace,
)
from repro.obs.recorder import FlightRecorder, open_recorder
from repro.obs.slo import (
    SloTracker,
    check_slo,
    counters_from_openmetrics,
    histogram_percentile,
    sanitize_tenant,
    slo_report,
)
from repro.obs.tracing import (
    Span,
    SpanRing,
    TraceContext,
    Tracer,
    ctx_from_wire,
    ctx_to_wire,
)
from repro.perf.metrics_export import render_openmetrics
from repro.telemetry.counters import CounterRegistry


# --------------------------------------------------------------------- #
# Span-tree integrity property (satellite: hypothesis property)
# --------------------------------------------------------------------- #

# A "program" is a tree of nested span scopes.  Each node is a tuple
# (layer_index, wire_hop, children): `layer_index` picks which Tracer
# opens the span, `wire_hop` routes the parent link through a
# ctx_to_wire/ctx_from_wire round-trip (as the gateway does), children
# run strictly inside the parent's scope — the only way the API is used.
_programs = st.recursive(
    st.tuples(st.integers(0, 3), st.booleans(), st.just(())),
    lambda kids: st.tuples(
        st.integers(0, 3),
        st.booleans(),
        st.lists(kids, max_size=4).map(tuple),
    ),
    max_leaves=24,
)


def _run_program(node, tracers, *, parent_ctx=None) -> None:
    layer, wire_hop, children = node
    tracer = tracers[layer % len(tracers)]
    parent = parent_ctx
    if wire_hop and parent is None:
        # Route the ambient parent through the wire encoding, as the
        # gateway does with the client's `trace` field.
        parent = ctx_from_wire(ctx_to_wire(Tracer.current_context()))
    with tracer.span(f"op{layer}", parent=parent) as span:
        for child in children:
            _run_program(child, tracers)
        # A leaf may also "ship" a pre-finished remote span, the way a
        # shard worker returns span dicts inside its Pipe reply.
        if not children and wire_hop:
            remote = {
                "name": "remote.op",
                "trace_id": span.trace_id,
                "span_id": f"r{id(node) & 0xFFFFFF:x}{span.span_id}",
                "parent_id": span.span_id,
                "proc": "remote",
                "start": span.start,
                "end": span.start,
            }
            tracers[0].adopt([remote])


class TestSpanTreeProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_programs, min_size=1, max_size=6))
    def test_any_legal_usage_validates(self, programs):
        """Every span has a reachable parent chain ending at a root of
        its own trace, and no span outlives the trace root."""
        ring = SpanRing(1 << 12)
        tracers = [
            Tracer(proc, ring=ring)
            for proc in ("client", "gateway", "session", "backend")
        ]
        for program in programs:
            _run_program(program, tracers)
        spans = merge_spans(ring)
        assert validate_span_tree(spans) == []
        # Each top-level program is its own trace, roots included.
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == len(programs)
        assert len({s.trace_id for s in roots}) == len(programs)
        # The root convention: trace_id IS the root's span_id.
        assert all(s.trace_id == s.span_id for s in roots)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_programs, min_size=1, max_size=4), st.integers(0, 2))
    def test_corruption_is_detected(self, programs, mode):
        ring = SpanRing(1 << 12)
        tracers = [Tracer("p", ring=ring)]
        for program in programs:
            _run_program(program, tracers)
        spans = merge_spans(ring)
        victim = spans[-1]
        if mode == 0:
            victim.parent_id = "nonexistent-span-id"
        elif mode == 1:
            victim.end = victim.start - 1.0
        else:
            # A child that outlives its trace root (or, for a root
            # victim, a dangling parent loop onto itself).
            if victim.parent_id is None:
                victim.parent_id = victim.span_id + "x"
            else:
                root = next(
                    s
                    for s in spans
                    if s.trace_id == victim.trace_id and s.parent_id is None
                )
                victim.end = root.end + 1.0
        assert validate_span_tree(spans) != []


class TestTracing:
    def test_nested_spans_parent_through_layers(self):
        ring = SpanRing()
        outer, inner = Tracer("gateway", ring=ring), Tracer("session", ring=ring)
        with outer.span("server.learn") as parent:
            with inner.span("session.learn") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id
        assert Tracer.current_context() is None
        assert [s.proc for s in ring.spans()] == ["session", "gateway"]

    def test_wire_roundtrip_and_tolerance(self):
        ctx = TraceContext("t" * 16, "s" * 16)
        assert ctx_to_wire(None) is None
        wired = ctx_to_wire(ctx)
        back = ctx_from_wire(wired)
        assert (back.trace_id, back.span_id) == (ctx.trace_id, ctx.span_id)
        for garbage in (None, "str", 7, [], {}, {"trace_id": "a"},
                        {"trace_id": 1, "span_id": 2},
                        {"trace_id": "", "span_id": "b"},
                        {"trace_id": "a" * 65, "span_id": "b"}):
            assert ctx_from_wire(garbage) is None

    def test_span_records_error_attribute(self):
        tracer = Tracer("t")
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.ring.spans()
        assert span.attrs["error"] == "ValueError"
        assert span.end >= span.start

    def test_ring_bounds_and_drop_accounting(self):
        ring = SpanRing(8)
        tracer = Tracer("t", ring=ring)
        for i in range(20):
            with tracer.span(f"s{i}"):
                pass
        assert len(ring) == 8
        assert ring.total == 20 and ring.dropped == 12
        assert [s.name for s in ring.spans()] == [f"s{i}" for i in range(12, 20)]
        drained = ring.drain()
        assert len(drained) == 8 and len(ring) == 0

    def test_adopt_span_dicts(self):
        tracer = Tracer("parent")
        shipped = [
            {"name": "shard.run", "trace_id": "t1", "span_id": "t1",
             "parent_id": None, "proc": "shard0", "start": 1.0, "end": 2.0},
        ]
        assert tracer.adopt(shipped) == 1
        (span,) = tracer.ring.spans()
        assert isinstance(span, Span) and span.proc == "shard0"
        assert span.duration == 1.0


class TestCollector:
    def _spans(self):
        ring = SpanRing()
        tracer = Tracer("client", ring=ring)
        with tracer.span("client.learn"):
            with tracer.fork("gateway").span("server.learn"):
                pass
        return ring.spans()

    def test_chrome_trace_shape_and_validation(self):
        doc = chrome_trace(self._spans(), meta={"bench": "unit"})
        assert validate_chrome_trace(doc) == []
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"client.learn", "server.learn"}
        procs = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert procs == {"client", "gateway"}
        assert doc["otherData"]["bench"] == "unit"
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in slices)

    def test_validate_chrome_trace_rejects_junk(self):
        assert validate_chrome_trace(None)
        assert validate_chrome_trace({})
        assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
        missing_meta = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 9, "tid": 1, "ts": 0, "dur": 1}
            ]
        }
        assert any("process_name" in p for p in validate_chrome_trace(missing_meta))

    def test_write_chrome_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._spans())
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestSlo:
    def test_percentiles_from_histogram(self):
        registry = CounterRegistry()
        slo = SloTracker(registry)
        rng = random.Random(5)
        for _ in range(1000):
            slo.observe("acme", "learn", rng.uniform(0.5, 2.0))
        summary = registry.as_dict()["serve.slo.acme.learn.latency_ms"]
        p50 = histogram_percentile(summary, 0.50)
        p99 = histogram_percentile(summary, 0.99)
        assert 0.5 <= p50 <= 2.0 and 0.5 <= p99 <= 2.5
        assert p50 <= p99
        assert histogram_percentile({"count": 0}, 0.5) is None

    def test_openmetrics_roundtrip_report_and_gate(self):
        registry = CounterRegistry()
        slo = SloTracker(registry)
        for i in range(100):
            slo.observe("acme", "learn", 1.0 + (i % 5) * 0.1)
            slo.observe("beta-corp", "act", 0.2)
        slo.error("acme", "deadline_exceeded", 3)
        text = render_openmetrics(registry)
        counters = counters_from_openmetrics(text)
        report = slo_report(counters)
        tenants = report["tenants"]
        assert set(tenants) == {"acme", "beta-corp"}
        assert tenants["acme"]["ops"]["learn"]["count"] == 100
        assert tenants["acme"]["errors"]["deadline_exceeded"] == 3
        p99 = tenants["acme"]["ops"]["learn"]["p99_ms"]
        assert p99 is not None and 1.0 <= p99 <= 2.6

        ok = check_slo(report, {"default": {"p99_ms": 100.0}})
        assert ok == []
        burned = check_slo(
            report,
            {
                "default": {"p99_ms": 100.0},
                "tenants": {
                    "acme": {
                        "p99_ms": 0.5,
                        "max_errors": {"deadline_exceeded": 0},
                    }
                },
            },
        )
        assert len(burned) == 2
        assert any("error budget" in v for v in burned)

    def test_sanitize_tenant(self):
        assert sanitize_tenant(None) == "anon"
        assert sanitize_tenant("") == "anon"
        assert sanitize_tenant("a.b c/d") == "a_b_c_d"
        assert len(sanitize_tenant("x" * 200)) == 48


class TestFlightRecorder:
    def test_rotation_bounds_disk(self, tmp_path):
        rec = FlightRecorder(tmp_path, max_records=10, max_segments=2)
        for i in range(55):
            rec.record_event("tick", i=i)
        segments = sorted(p.name for p in tmp_path.glob("flight-*.jsonl"))
        assert len(segments) == 2
        survivors = [r["i"] for r in rec.records() if r["kind"] == "tick"]
        # Only the newest two segments (<= 20 records) survive, in order.
        assert survivors == list(range(55))[-len(survivors):]
        assert 10 < len(survivors) <= 20
        rec.close()

    def test_torn_line_tolerated_and_dump(self, tmp_path):
        rec = FlightRecorder(tmp_path, max_records=100)
        rec.record_event("worker_restarted", worker=0)
        # Simulate the SIGKILL-torn trailing line the docstring promises
        # readers survive.
        rec._fh.write('{"type":"event","kind":"torn')
        rec._fh.flush()
        kinds = [r["kind"] for r in rec.records()]
        assert kinds == ["worker_restarted"]

        span = Span("client.learn", "t1", "t1", None, "client", 1.0, 2.0)
        dump = rec.dump(spans=[span])
        rec.close()
        lines = [json.loads(l) for l in open(dump, encoding="utf-8")]
        assert [r["type"] for r in lines] == ["event", "span"]
        assert lines[1]["name"] == "client.learn"

    def test_recorder_resumes_segment_numbering(self, tmp_path):
        rec1 = FlightRecorder(tmp_path, max_records=5)
        rec1.record_event("a")
        rec1.close()
        rec2 = FlightRecorder(tmp_path, max_records=5)
        rec2.record_event("b")
        rec2.close()
        names = sorted(p.name for p in tmp_path.glob("flight-*.jsonl"))
        assert names == ["flight-000000.jsonl", "flight-000001.jsonl"]
        assert [r["kind"] for r in rec2.records()] == ["a", "b"]

    def test_open_recorder_disabled(self):
        assert open_recorder(None) is None
        assert open_recorder("") is None

    def test_recorder_as_tracer_sink(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        tracer = Tracer("client", sink=rec.record_span)
        with tracer.span("client.open"):
            pass
        rec.close()
        (record,) = list(rec.records())
        assert record["type"] == "span" and record["name"] == "client.open"


class TestClientSampling:
    def _client(self, trace_sample):
        from repro.serve.client import ServeClient

        client = ServeClient.__new__(ServeClient)
        client.tracer = Tracer("client")
        client.tenant = None
        client._trace_stride = (
            max(1, round(1.0 / trace_sample)) if trace_sample > 0 else 0
        )
        client._trace_tick = 0
        client.retries = 0
        sent = []
        client._attempts = lambda message, retry_safe: (
            sent.append(message) or {"ok": True}
        )
        return client, sent

    def test_hot_ops_head_sampled_deterministically(self):
        client, sent = self._client(0.25)
        for _ in range(16):
            client.request({"op": "learn", "s": 0, "a": 0, "r": 0.0, "ns": 1})
        traced = [m for m in sent if "trace" in m]
        assert len(sent) == 16 and len(traced) == 4
        # Stride sampling: every 4th request, starting with the first.
        assert [i for i, m in enumerate(sent) if "trace" in m] == [0, 4, 8, 12]
        # Sampled requests carry a complete, parseable context.
        for m in traced:
            assert ctx_from_wire(m["trace"]) is not None

    def test_structural_ops_always_traced(self):
        client, sent = self._client(0.0625)
        for _ in range(3):
            client.request({"op": "open"})
            client.request({"op": "checkpoint", "session": "s1"})
        assert all("trace" in m for m in sent)

    def test_sample_zero_disables_hot_traces(self):
        client, sent = self._client(0.0)
        for _ in range(8):
            client.request({"op": "act", "s": 0})
        assert not any("trace" in m for m in sent)
        # ...but the client span ring stays empty too: no hidden cost.
        assert client.tracer.ring.total == 0

    def test_full_sampling_traces_everything(self):
        client, sent = self._client(1.0)
        for _ in range(5):
            client.request({"op": "learn", "s": 0, "a": 0, "r": 0.0, "ns": 1})
        assert all("trace" in m for m in sent)
        assert client.tracer.ring.total == 5
