"""Tests for the fleet backends package (``repro.backends``).

The headline contract, property-tested across configs: whichever
backend runs lane ``k``, its trajectory is bit-identical to a scalar
:class:`FunctionalSimulator` seeded with the same salt — for the
default fixed-point formats, non-default rounding/overflow variants,
and wide "float-like" formats alike.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import (
    BatchStats,
    FleetBackend,
    ScalarFleetBackend,
    ShardedFleetBackend,
    VectorizedFleetBackend,
    fleet_backends,
    make_fleet_backend,
    resolve_fleet_backend,
)
from repro.core.batch import BatchIndependentSimulator
from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.policies import PolicyDraws
from repro.envs.gridworld import GridWorld
from repro.envs.random_mdp import random_dense_mdp
from repro.fixedpoint import FxpFormat

GRID = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
LOOPY = random_dense_mdp(16, 4, seed=9, self_loop_bias=0.5)

#: Formats the bit-identity property sweeps: the default s16.6, a
#: nearest-rounding variant, a wrap-overflow variant, and a wide
#: "float-like" word whose resolution makes rounding loss negligible.
Q_FORMATS = {
    "default": FxpFormat(16, 6),
    "nearest": FxpFormat(16, 6, rounding="nearest"),
    "wrap": FxpFormat(16, 6, overflow="wrap"),
    "floatlike": FxpFormat(48, 24),
}


def reference_tables(mdp, cfg, salt, n):
    f = FunctionalSimulator(mdp, cfg, draws=PolicyDraws.from_config(cfg, salt=salt))
    f.run(n)
    return f


def assert_backend_parity(backend_cls, mdp, cfg, *, num_agents=4, n=400):
    fleet = backend_cls(mdp, cfg, num_agents=num_agents)
    fleet.run(n)
    for k in range(num_agents):
        f = reference_tables(mdp, cfg, k, n)
        assert np.array_equal(fleet.q[k], f.tables.q.data), f"lane {k} Q differs"
        assert np.array_equal(fleet.qmax[k], f.tables.qmax.data)
        assert np.array_equal(fleet.qmax_action[k], f.tables.qmax_action.data)
    return fleet


class TestBitIdentityProperty:
    """Hypothesis sweep: vectorized lanes == FunctionalSimulator."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        alpha=st.sampled_from([0.25, 0.5, 1.0]),
        gamma=st.sampled_from([0.0, 0.5, 0.9]),
        algorithm=st.sampled_from(["qlearning", "sarsa"]),
        qmax_mode=st.sampled_from(["monotonic", "follow"]),
        fmt=st.sampled_from(sorted(Q_FORMATS)),
    )
    def test_vectorized_matches_functional(
        self, seed, alpha, gamma, algorithm, qmax_mode, fmt
    ):
        preset = getattr(QTAccelConfig, algorithm)
        cfg = preset(
            seed=seed,
            alpha=alpha,
            gamma=gamma,
            qmax_mode=qmax_mode,
            q_format=Q_FORMATS[fmt],
        )
        assert_backend_parity(VectorizedFleetBackend, LOOPY, cfg, num_agents=3, n=300)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        fmt=st.sampled_from(["default", "floatlike"]),
    )
    def test_scalar_matches_functional(self, seed, fmt):
        cfg = QTAccelConfig.sarsa(seed=seed, q_format=Q_FORMATS[fmt])
        assert_backend_parity(ScalarFleetBackend, GRID, cfg, num_agents=3, n=200)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        algorithm=st.sampled_from(["qlearning", "sarsa"]),
        fmt=st.sampled_from(sorted(Q_FORMATS)),
    )
    def test_backends_agree_with_each_other(self, seed, algorithm, fmt):
        preset = getattr(QTAccelConfig, algorithm)
        cfg = preset(seed=seed, q_format=Q_FORMATS[fmt], qmax_mode="follow")
        vec = VectorizedFleetBackend(GRID, cfg, num_agents=4)
        sc = ScalarFleetBackend(GRID, cfg, num_agents=4)
        vec.run(250)
        sc.run(250)
        assert np.array_equal(vec.q, sc.q)
        assert np.array_equal(vec.qmax, sc.qmax)
        assert np.array_equal(vec.qmax_action, sc.qmax_action)
        assert vec.stats.as_dict() == sc.stats.as_dict()


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("backend_cls", [VectorizedFleetBackend, ScalarFleetBackend])
    def test_state_dict_replays_exactly(self, backend_cls):
        cfg = QTAccelConfig.sarsa(seed=13, qmax_mode="follow")
        fleet = backend_cls(LOOPY, cfg, num_agents=5)
        fleet.run(150)
        ckpt = fleet.state_dict()
        fleet.run(150)
        q_after = fleet.q.copy()
        qmax_after = fleet.qmax.copy()
        stats_after = fleet.stats.as_dict()

        fresh = backend_cls(LOOPY, cfg, num_agents=5)
        fresh.load_state_dict(ckpt)
        fresh.run(150)
        assert np.array_equal(fresh.q, q_after)
        assert np.array_equal(fresh.qmax, qmax_after)
        assert fresh.stats.as_dict() == stats_after

    def test_vectorized_fixed_point_checkpoint(self):
        cfg = QTAccelConfig.qlearning(seed=3, q_format=Q_FORMATS["nearest"])
        fleet = VectorizedFleetBackend(GRID, cfg, num_agents=3)
        fleet.run(100)
        ckpt = fleet.state_dict()
        fleet.run(100)
        expected = fleet.q.copy()
        fleet.load_state_dict(ckpt)
        fleet.run(100)
        assert np.array_equal(fleet.q, expected)

    @pytest.mark.parametrize("backend_cls", [VectorizedFleetBackend, ScalarFleetBackend])
    def test_lane_state_restores_one_lane(self, backend_cls):
        """Per-lane rollback: restoring lane 1 replays only lane 1."""
        cfg = QTAccelConfig.qlearning(seed=8)
        fleet = backend_cls(GRID, cfg, num_agents=3)
        fleet.run(120)
        lane = fleet.lane_state(1)
        fleet.run(50)
        expected_other = fleet.q[2].copy()
        fleet.load_lane_state(1, lane)
        assert np.array_equal(fleet.q[2], expected_other)  # untouched
        # The restored lane matches a functional replay to sample 120.
        f = reference_tables(GRID, cfg, 1, 120)
        assert np.array_equal(fleet.q[1], f.tables.q.data)


class TestRegistryAndDispatch:
    def test_registry_names(self):
        assert set(fleet_backends()) == {"native", "scalar", "sharded", "vectorized"}

    def test_resolve_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown fleet backend 'nope'"):
            resolve_fleet_backend("nope")

    def test_make_fleet_backend(self):
        cfg = QTAccelConfig.qlearning(seed=1)
        vec = make_fleet_backend(GRID, cfg, num_agents=2)
        sc = make_fleet_backend(GRID, cfg, backend="scalar", num_agents=2)
        assert isinstance(vec, VectorizedFleetBackend)
        assert isinstance(sc, ScalarFleetBackend)
        assert isinstance(vec, FleetBackend) and isinstance(sc, FleetBackend)

    def test_batch_facade_dispatches(self):
        cfg = QTAccelConfig.qlearning(seed=1)
        default = BatchIndependentSimulator(GRID, cfg, num_agents=2)
        scalar = BatchIndependentSimulator(GRID, cfg, num_agents=2, backend="scalar")
        assert isinstance(default, VectorizedFleetBackend)
        assert isinstance(scalar, ScalarFleetBackend)
        with pytest.raises(ValueError, match="unknown fleet backend"):
            BatchIndependentSimulator(GRID, cfg, num_agents=2, backend="gpu")

    def test_stats_contract(self):
        cfg = QTAccelConfig.qlearning(seed=1)
        fleet = make_fleet_backend(GRID, cfg, num_agents=2)
        fleet.run(10)
        d = fleet.stats.as_dict()
        assert d["samples"] == 20
        assert d["cycles"] is None
        assert fleet.stats.samples == 20

    def test_total_samples_deprecated(self):
        stats = BatchStats(agents=2, samples_per_agent=5)
        with pytest.warns(DeprecationWarning, match="total_samples"):
            assert stats.total_samples == 10


# ---------------------------------------------------------------------- #
# Sharded (process-parallel) backend
# ---------------------------------------------------------------------- #


def _sharded(mdps, cfg, **kw):
    """Sharded fleet with test defaults: fork (fast) and small epochs."""
    kw.setdefault("mp_context", "fork")
    kw.setdefault("epoch", 32)
    return ShardedFleetBackend(mdps, cfg, **kw)


def assert_fleets_equal(sharded, vec):
    assert np.array_equal(sharded.q, vec.q)
    assert np.array_equal(sharded.qmax, vec.qmax)
    assert np.array_equal(sharded.qmax_action, vec.qmax_action)
    assert sharded.stats.as_dict() == vec.stats.as_dict()


class TestShardedBitIdentity:
    """The tentpole contract: any worker count, same bits."""

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        workers=st.sampled_from([1, 2, 3, 5]),
        algorithm=st.sampled_from(["qlearning", "sarsa"]),
        fmt=st.sampled_from(["default", "nearest"]),
    )
    def test_sharded_matches_vectorized(self, seed, workers, algorithm, fmt):
        preset = getattr(QTAccelConfig, algorithm)
        cfg = preset(seed=seed, q_format=Q_FORMATS[fmt], qmax_mode="follow")
        vec = VectorizedFleetBackend(LOOPY, cfg, num_agents=6)
        vec.run(96)
        fleet = _sharded(LOOPY, cfg, num_agents=6, num_workers=workers)
        try:
            fleet.run(96)
            assert_fleets_equal(fleet, vec)
        finally:
            fleet.close()

    def test_workers_exceeding_lanes_clamp(self):
        cfg = QTAccelConfig.qlearning(seed=4)
        vec = VectorizedFleetBackend(GRID, cfg, num_agents=3)
        vec.run(80)
        fleet = _sharded(GRID, cfg, num_agents=3, num_workers=9)
        try:
            assert fleet.num_workers == 3  # one lane per worker at most
            fleet.run(80)
            assert_fleets_equal(fleet, vec)
        finally:
            fleet.close()

    def test_heterogeneous_worlds_odd_split(self):
        """Per-lane worlds survive an uneven 5-lanes/2-workers split."""
        worlds = [random_dense_mdp(16, 4, seed=s, self_loop_bias=0.5) for s in range(20, 25)]
        cfg = QTAccelConfig.sarsa(seed=6, qmax_mode="follow")
        vec = VectorizedFleetBackend(worlds, cfg)
        vec.run(90)
        fleet = _sharded(worlds, cfg, num_workers=2)
        try:
            fleet.run(90)
            assert_fleets_equal(fleet, vec)
        finally:
            fleet.close()

    def test_spawn_context_parity(self):
        """The default spawn context produces the same bits as fork."""
        cfg = QTAccelConfig.qlearning(seed=12)
        vec = VectorizedFleetBackend(GRID, cfg, num_agents=4)
        vec.run(64)
        fleet = ShardedFleetBackend(
            GRID, cfg, num_agents=4, num_workers=2, epoch=32, mp_context="spawn"
        )
        try:
            fleet.run(64)
            assert_fleets_equal(fleet, vec)
        finally:
            fleet.close()

    def test_lane_parity_with_functional(self):
        """Each shard lane still replays the scalar reference exactly."""
        cfg = QTAccelConfig.qlearning(seed=17, qmax_mode="follow")
        fleet = _sharded(GRID, cfg, num_agents=4, num_workers=2)
        try:
            fleet.run(120)
            for k in range(4):
                f = reference_tables(GRID, cfg, k, 120)
                assert np.array_equal(fleet.q[k], f.tables.q.data), f"lane {k}"
        finally:
            fleet.close()


class TestShardedCheckpointAndRecovery:
    def test_checkpoint_round_trip_across_worker_counts(self):
        """A 3-worker checkpoint restores into a 2-worker fleet."""
        cfg = QTAccelConfig.sarsa(seed=13, qmax_mode="follow")
        fleet = _sharded(LOOPY, cfg, num_agents=5, num_workers=3)
        try:
            fleet.run(96)
            ckpt = fleet.state_dict()
            fleet.run(96)
            q_after = fleet.q.copy()
            stats_after = fleet.stats.as_dict()
        finally:
            fleet.close()

        fresh = _sharded(LOOPY, cfg, num_agents=5, num_workers=2)
        try:
            fresh.load_state_dict(ckpt)
            fresh.run(96)
            assert np.array_equal(fresh.q, q_after)
            assert fresh.stats.as_dict() == stats_after
        finally:
            fresh.close()

    def test_killed_worker_recovers_bit_identically(self):
        cfg = QTAccelConfig.qlearning(seed=5, qmax_mode="follow")
        vec = VectorizedFleetBackend(GRID, cfg, num_agents=6)
        vec.run(192)
        fleet = _sharded(GRID, cfg, num_agents=6, num_workers=2, checkpoint_interval=1)
        try:
            fleet.run(96)
            fleet.kill_worker(1)
            fleet.run(96)
            assert fleet.restarts >= 1
            assert not fleet.quarantined_workers
            assert_fleets_equal(fleet, vec)
        finally:
            fleet.close()

    def test_unrecoverable_worker_is_quarantined(self):
        """A worker that dies on every epoch stops retrying; the healthy
        shard keeps training bit-identically."""
        cfg = QTAccelConfig.qlearning(seed=7, qmax_mode="follow")
        fleet = _sharded(
            GRID,
            cfg,
            num_agents=4,
            num_workers=2,
            checkpoint_interval=1,
            max_worker_restarts=1,
            debug_fail_workers=(1,),
        )
        try:
            fleet.run(64)
            assert fleet.quarantined_workers == {1}
            vec = VectorizedFleetBackend(GRID, cfg, num_agents=4)
            vec.run(64)
            lo, hi = fleet.shard_bounds(0)
            assert np.array_equal(fleet.q[lo:hi], vec.q[lo:hi])
        finally:
            fleet.close()

    def test_supervisor_composes_over_sharded(self):
        """FleetSupervisor's lane-level recovery runs on top of the
        backend's own process-level recovery."""
        from repro.robustness import BatchLanes, FleetSupervisor

        cfg = QTAccelConfig.qlearning(seed=9, qmax_mode="follow")
        fleet = _sharded(GRID, cfg, num_agents=4, num_workers=2)
        try:
            sup = FleetSupervisor(BatchLanes(fleet), interval=32)
            report = sup.run(96)
            assert report.completed
            assert fleet.stats.samples_per_agent == 96
        finally:
            fleet.close()


class TestShardedDispatchAndLifecycle:
    def test_facade_and_engine_dispatch(self):
        from repro.core.engine import make_engine

        cfg = QTAccelConfig.qlearning(seed=2)
        via_batch = BatchIndependentSimulator(
            GRID, cfg, num_agents=2, backend="sharded", num_workers=2, mp_context="fork"
        )
        via_engine = make_engine(
            cfg, engine="sharded", mdp=GRID, num_agents=2, num_workers=2,
            mp_context="fork",
        )
        try:
            assert isinstance(via_batch, ShardedFleetBackend)
            assert isinstance(via_engine, ShardedFleetBackend)
            assert isinstance(via_batch, FleetBackend)
        finally:
            via_batch.close()
            via_engine.close()

    def test_close_is_idempotent_and_context_manager(self):
        cfg = QTAccelConfig.qlearning(seed=2)
        with _sharded(GRID, cfg, num_agents=2, num_workers=2) as fleet:
            fleet.run(32)
        fleet.close()  # second close is a no-op

    def test_telemetry_snapshot_reports_topology(self):
        cfg = QTAccelConfig.qlearning(seed=2)
        fleet = _sharded(GRID, cfg, num_agents=4, num_workers=2)
        try:
            fleet.run(32)
            snap = fleet.telemetry_snapshot()
            assert snap["workers"] == 2
            assert snap["restarts"] == 0
        finally:
            fleet.close()
