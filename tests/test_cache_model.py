"""Tests for the CPU cache-hierarchy model."""

import numpy as np
import pytest

from repro.envs.gridworld import GridWorld
from repro.reference.cache_model import (
    LINE_BYTES,
    CacheHierarchy,
    CacheLevel,
    modelled_cpu_throughput,
    qlearning_trace_cycles,
)


class TestCacheLevel:
    def test_hit_after_allocation(self):
        c = CacheLevel("L1", 32 * 1024, 8, hit_cycles=4)
        assert not c.lookup(100)
        assert c.lookup(100)

    def test_capacity_eviction(self):
        """Filling a set beyond its ways evicts the LRU line."""
        c = CacheLevel("tiny", 8 * LINE_BYTES, 2, hit_cycles=1)  # 4 sets x 2 ways
        s = c.sets
        c.lookup(0)
        c.lookup(s)  # same set, second way
        c.lookup(2 * s)  # evicts line 0 (LRU)
        assert not c.lookup(0)

    def test_lru_order(self):
        c = CacheLevel("tiny", 8 * LINE_BYTES, 2, hit_cycles=1)
        s = c.sets
        c.lookup(0)
        c.lookup(s)
        c.lookup(0)  # refresh line 0: now line s is LRU
        c.lookup(2 * s)  # evicts s, not 0
        assert c.lookup(0)
        assert not c.lookup(s)

    def test_distinct_sets_dont_conflict(self):
        c = CacheLevel("tiny", 8 * LINE_BYTES, 2, hit_cycles=1)
        for line in range(c.sets):
            c.lookup(line)
        for line in range(c.sets):
            assert c.lookup(line)

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 1000, 3, hit_cycles=1)

    def test_reset(self):
        c = CacheLevel("L1", 32 * 1024, 8, hit_cycles=4)
        c.lookup(5)
        c.reset()
        assert not c.lookup(5)


class TestHierarchy:
    def test_latency_ordering(self):
        h = CacheHierarchy.paper_i5()
        first = h.access(0)  # cold: DRAM
        second = h.access(0)  # warm: L1
        assert first == h.dram_cycles
        assert second == h.levels[0].hit_cycles

    def test_inclusive_fill(self):
        """A DRAM fetch allocates in every level, so an L1 eviction can
        still hit L2/L3."""
        h = CacheHierarchy.paper_i5()
        h.access(0)
        l1 = h.levels[0]
        # blow L1's set for line 0 with conflicting lines
        for i in range(1, l1.assoc + 2):
            h.access(i * l1.sets * LINE_BYTES)
        lat = h.access(0)
        assert lat in (h.levels[1].hit_cycles, h.levels[2].hit_cycles)

    def test_stats(self):
        h = CacheHierarchy.paper_i5()
        h.access(0)
        h.access(0)
        assert h.stats.accesses == 2
        assert h.stats.hits["L1"] == 1

    def test_paper_capacities(self):
        h = CacheHierarchy.paper_i5()
        assert h.levels[1].size == 256 * 1024  # §VI-E: 256KB L2
        assert h.levels[2].size == 6 * 1024 * 1024  # 6MB L3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestTraceModel:
    def test_small_world_stays_cached(self):
        mdp = GridWorld.empty(8, 4).to_mdp()
        h = CacheHierarchy.paper_i5()
        cycles = qlearning_trace_cycles(mdp, 5000, hierarchy=h)
        total = h.stats.accesses
        assert h.stats.hits["L1"] / total > 0.95
        assert cycles < 100

    def test_cost_grows_with_state_space(self):
        small = qlearning_trace_cycles(GridWorld.empty(8, 4).to_mdp(), 5000)
        big = qlearning_trace_cycles(GridWorld.empty(128, 4).to_mdp(), 5000)
        assert big > 2 * small

    def test_throughput_declines_with_size(self):
        small = modelled_cpu_throughput(GridWorld.empty(8, 4).to_mdp(), samples=5000)
        big = modelled_cpu_throughput(GridWorld.empty(128, 4).to_mdp(), samples=5000)
        assert big < small

    def test_deterministic(self):
        mdp = GridWorld.empty(16, 4).to_mdp()
        a = qlearning_trace_cycles(mdp, 3000, seed=5)
        b = qlearning_trace_cycles(mdp, 3000, seed=5)
        assert a == b
