"""The native fused-kernel backend (``repro.backends.native``).

Contract under test, tier by tier: whichever kernel tier advances the
fleet — interpreted ``python``, runtime-compiled ``cc``, JIT ``numba`` —
the resulting architectural state is bit-identical to the vectorized
numpy program (and therefore, transitively, to the scalar
:class:`FunctionalSimulator` every other backend is pinned against).
The suite runs against every tier available on the host; the ``python``
oracle is always available, so the contract is exercised even on a
machine with neither numba nor a C compiler.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.algorithms import RuleKernel, UnsupportedRuleError
from repro.algorithms.rules import QLearningRule
from repro.backends import (
    FleetBackend,
    NativeBackendUnavailableError,
    NativeFleetBackend,
    VectorizedFleetBackend,
    fleet_backend_availability,
    fleet_backends,
    make_fleet_backend,
    native_kernel_tiers,
)
from repro.backends import native as native_mod
from repro.core.batch import BatchIndependentSimulator
from repro.core.config import QTAccelConfig
from repro.core.engine import make_engine
from repro.core.functional import FunctionalSimulator
from repro.core.policies import PolicyDraws
from repro.envs.random_mdp import random_dense_mdp
from repro.fixedpoint import FxpFormat
from tests.test_update_rules import GOLDEN_MOMENTUM, GRID

LOOPY = random_dense_mdp(16, 4, seed=9, self_loop_bias=0.5)

#: Kernel tiers present on this host, cheapest-to-verify first.  The
#: interpreted oracle is unconditionally present; CI's native-smoke job
#: adds numba, most dev hosts add cc.
AVAILABLE_TIERS = [t for t in ("python", "cc", "numba") if native_kernel_tiers()[t]]
COMPILED_TIERS = [t for t in AVAILABLE_TIERS if t != "python"]

#: Formats the bit-identity sweep covers: the default s16.6 in both
#: rounding modes, wrap overflow, a deliberately narrow word that
#: overflows constantly, and a wide "float-like" word.
Q_FORMATS = {
    "default": FxpFormat(16, 6),
    "nearest": FxpFormat(16, 6, rounding="nearest"),
    "wrap": FxpFormat(16, 6, overflow="wrap"),
    "narrow": FxpFormat(10, 4),
    "floatlike": FxpFormat(48, 24),
}

RULES = ("qlearning", "sarsa", "momentum", "target")


def _cfg(rule: str, **kw) -> QTAccelConfig:
    if rule == "momentum":
        return QTAccelConfig.momentum(**kw)
    if rule == "target":
        return QTAccelConfig.target_q(**kw)
    return getattr(QTAccelConfig, rule)(**kw)


def _assert_equal_tree(a, b, path="state") -> None:
    if isinstance(a, dict):
        assert set(a) == set(b), path
        for key in a:
            _assert_equal_tree(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, np.ndarray):
        assert np.array_equal(a, b), f"{path} differs"
    else:
        assert a == b, f"{path} differs"


def _assert_same_state(native, vec) -> None:
    """Full architectural equality, not just the Q tables."""
    _assert_equal_tree(native.state_dict(), vec.state_dict())
    assert native.stats.as_dict() == vec.stats.as_dict()


# ---------------------------------------------------------------------- #
# Registry, dispatch, availability
# ---------------------------------------------------------------------- #


class TestRegistryAndDispatch:
    def test_registry_has_native(self):
        assert "native" in fleet_backends()
        assert fleet_backends()["native"] is NativeFleetBackend

    def test_availability_report(self):
        rep = fleet_backend_availability()
        assert set(rep) == {"native", "scalar", "sharded", "vectorized"}
        for name in ("scalar", "sharded", "vectorized"):
            assert rep[name]["available"] is True
        assert isinstance(rep["native"]["available"], bool)
        assert isinstance(rep["native"]["detail"], str)

    def test_kernel_tier_report(self):
        tiers = native_kernel_tiers()
        assert set(tiers) == {"numba", "cc", "python"}
        assert tiers["python"] is True

    def test_make_engine_and_facade_dispatch(self):
        cfg = QTAccelConfig.qlearning(seed=1)
        eng = make_engine(cfg, engine="native", mdp=GRID, num_agents=2, kernel="python")
        fab = make_fleet_backend(GRID, cfg, backend="native", num_agents=2, kernel="python")
        bat = BatchIndependentSimulator(
            GRID, cfg, num_agents=2, backend="native", kernel="python"
        )
        for built in (eng, fab, bat):
            assert isinstance(built, NativeFleetBackend)
            assert isinstance(built, FleetBackend)
        eng.run(16)
        assert eng.stats.samples == 32

    def test_env_var_selects_tier(self, monkeypatch):
        monkeypatch.setenv(native_mod.KERNEL_ENV_VAR, "python")
        fleet = NativeFleetBackend(GRID, QTAccelConfig.qlearning(seed=1), num_agents=1)
        assert fleet.kernel_tier == "python"

    def test_explicit_kernel_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv(native_mod.KERNEL_ENV_VAR, "definitely-not-a-tier")
        fleet = NativeFleetBackend(
            GRID, QTAccelConfig.qlearning(seed=1), num_agents=1, kernel="python"
        )
        assert fleet.kernel_tier == "python"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown native kernel tier"):
            NativeFleetBackend(
                GRID, QTAccelConfig.qlearning(seed=1), num_agents=1, kernel="gpu"
            )

    def test_unavailable_auto_raises_typed_error(self, monkeypatch):
        """With no compiled tier the error is typed and names the extra."""
        monkeypatch.setattr(
            native_mod,
            "native_kernel_tiers",
            lambda: {"numba": False, "cc": False, "python": True},
        )
        with pytest.raises(NativeBackendUnavailableError, match=r"repro\[native\]"):
            make_engine(
                QTAccelConfig.qlearning(seed=1), engine="native", mdp=GRID,
                num_agents=1,
            )

    def test_unavailable_explicit_tier_raises_typed_error(self, monkeypatch):
        monkeypatch.setattr(
            native_mod,
            "native_kernel_tiers",
            lambda: {"numba": False, "cc": True, "python": True},
        )
        with pytest.raises(NativeBackendUnavailableError, match="'numba'"):
            NativeFleetBackend(
                GRID, QTAccelConfig.qlearning(seed=1), num_agents=1, kernel="numba"
            )

    def test_unlowered_rule_rejected_at_construction(self, monkeypatch):
        """A rule whose RuleKernel id has no fused lowering fails early,
        typed, and names the backend that would still run it."""
        monkeypatch.setattr(
            QLearningRule, "kernel", RuleKernel(kernel_id=9, note="no lowering")
        )
        with pytest.raises(UnsupportedRuleError, match="kernel_id=9"):
            NativeFleetBackend(
                GRID, QTAccelConfig.qlearning(seed=1), num_agents=1, kernel="python"
            )

    def test_telemetry_snapshot_reports_tier(self):
        fleet = NativeFleetBackend(
            GRID, QTAccelConfig.qlearning(seed=2), num_agents=2, kernel="python"
        )
        fleet.run(8)
        snap = fleet.telemetry_snapshot()
        assert snap["kernel"] == "python"


# ---------------------------------------------------------------------- #
# Bit identity: every tier == the vectorized program == the scalar sim
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("tier", AVAILABLE_TIERS)
class TestBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        rule=st.sampled_from(RULES),
        fmt=st.sampled_from(sorted(Q_FORMATS)),
        qmax_mode=st.sampled_from(["exact", "monotonic", "follow"]),
    )
    def test_matches_vectorized(self, tier, seed, rule, fmt, qmax_mode):
        cfg = _cfg(rule, seed=seed, q_format=Q_FORMATS[fmt], qmax_mode=qmax_mode)
        nat = NativeFleetBackend(LOOPY, cfg, num_agents=3, kernel=tier)
        vec = VectorizedFleetBackend(LOOPY, cfg, num_agents=3)
        nat.run(200)
        vec.run(200)
        _assert_same_state(nat, vec)

    def test_lane_matches_functional(self, tier):
        """Lane k of the fused kernel == a scalar sim with salt k."""
        cfg = QTAccelConfig.sarsa(seed=23, qmax_mode="follow")
        fleet = NativeFleetBackend(GRID, cfg, num_agents=3, kernel=tier)
        fleet.run(300)
        for k in range(3):
            ref = FunctionalSimulator(
                GRID, cfg, draws=PolicyDraws.from_config(cfg, salt=k)
            )
            ref.run(300)
            assert np.array_equal(fleet.q[k], ref.tables.q.data), f"lane {k}"
            assert np.array_equal(fleet.qmax[k], ref.tables.qmax.data)
            assert np.array_equal(fleet.qmax_action[k], ref.tables.qmax_action.data)

    def test_hard_target_sync_matches_vectorized(self, tier):
        """The wholesale table copy (sync_period) inside the fused loop."""
        cfg = QTAccelConfig.target_q(seed=31, target_sync_period=17)
        nat = NativeFleetBackend(GRID, cfg, num_agents=3, kernel=tier)
        vec = VectorizedFleetBackend(GRID, cfg, num_agents=3)
        nat.run(250)
        vec.run(250)
        _assert_same_state(nat, vec)
        assert np.array_equal(nat.target, vec.target)

    def test_heterogeneous_fleet_matches_vectorized(self, tier):
        """Per-lane env table offsets survive the fused lowering."""
        worlds = [GRID, GRID, GRID]
        cfg = QTAccelConfig.sarsa(seed=41, qmax_mode="follow")
        nat = NativeFleetBackend(worlds, cfg, salts=[5, 9, 2], kernel=tier)
        vec = VectorizedFleetBackend(worlds, cfg, salts=[5, 9, 2])
        nat.run(200)
        vec.run(200)
        _assert_same_state(nat, vec)

    def test_step_and_run_interleave(self, tier):
        """Mixing single fused steps with fused runs stays on trajectory."""
        cfg = QTAccelConfig.qlearning(seed=3)
        nat = NativeFleetBackend(GRID, cfg, num_agents=2, kernel=tier)
        vec = VectorizedFleetBackend(GRID, cfg, num_agents=2)
        for _ in range(30):
            nat.step()
            vec.step()
        nat.run(70)
        vec.run(70)
        assert np.array_equal(nat.q, vec.q)
        assert np.array_equal(nat.qmax, vec.qmax)

    def test_golden_momentum_trace(self, tier):
        """The fused kernel reproduces the committed momentum golden
        trace sample by sample (lane 0 == the default-salt scalar sim);
        the lag latches expose (pair, action, q_raw) after each step."""
        fleet = NativeFleetBackend(
            GRID, QTAccelConfig.momentum(seed=5), num_agents=1, kernel=tier
        )
        A = fleet.A
        for sample, state, action, q_raw in GOLDEN_MOMENTUM:
            fleet.step()
            got_pair = int(fleet._prev_pair[0])
            got_state = int(fleet._prev_state[0])
            assert got_state == state, f"sample {sample}"
            assert got_pair - got_state * A == action, f"sample {sample}"
            assert int(fleet.q[0, got_pair]) == q_raw, f"sample {sample}"


@pytest.mark.parametrize("tier", COMPILED_TIERS)
def test_compiled_tier_agrees_with_python_oracle(tier):
    """Compiled tiers replay the interpreted oracle exactly — including
    the narrow wrap-overflow format where C/numba integer semantics
    could plausibly diverge from the numpy reference."""
    cfg = QTAccelConfig.momentum(
        seed=7, q_format=FxpFormat(10, 4, overflow="wrap"), qmax_mode="follow"
    )
    fast = NativeFleetBackend(LOOPY, cfg, num_agents=3, kernel=tier)
    oracle = NativeFleetBackend(LOOPY, cfg, num_agents=3, kernel="python")
    fast.run(400)
    oracle.run(400)
    _assert_same_state(fast, oracle)


# ---------------------------------------------------------------------- #
# Checkpoint / rollback
# ---------------------------------------------------------------------- #


class TestCheckpoint:
    @pytest.mark.parametrize("tier", AVAILABLE_TIERS)
    def test_state_dict_replays_exactly(self, tier):
        cfg = QTAccelConfig.target_q(seed=13, target_sync_period=32)
        fleet = NativeFleetBackend(LOOPY, cfg, num_agents=4, kernel=tier)
        fleet.run(150)
        ckpt = fleet.state_dict()
        fleet.run(150)
        q_after = fleet.q.copy()
        stats_after = fleet.stats.as_dict()

        fresh = NativeFleetBackend(LOOPY, cfg, num_agents=4, kernel=tier)
        fresh.load_state_dict(ckpt)
        fresh.run(150)
        assert np.array_equal(fresh.q, q_after)
        assert np.array_equal(fresh.target, fleet.target)
        assert fresh.stats.as_dict() == stats_after

    def test_checkpoints_portable_across_backends(self):
        """A mid-run native checkpoint restores into the vectorized
        backend (and back) with the continuation bit-identical."""
        cfg = QTAccelConfig.momentum(seed=17, qmax_mode="follow")
        nat = NativeFleetBackend(GRID, cfg, num_agents=3, kernel="python")
        nat.run(120)
        ckpt = nat.state_dict()
        nat.run(120)

        vec = VectorizedFleetBackend(GRID, cfg, num_agents=3)
        vec.load_state_dict(ckpt)
        vec.run(120)
        _assert_same_state(nat, vec)

        back = NativeFleetBackend(GRID, cfg, num_agents=3, kernel="python")
        back.load_state_dict(VectorizedFleetBackend(GRID, cfg, num_agents=3).state_dict())
        fresh_vec = VectorizedFleetBackend(GRID, cfg, num_agents=3)
        back.run(90)
        fresh_vec.run(90)
        _assert_same_state(back, fresh_vec)

    def test_lane_rollback(self):
        cfg = QTAccelConfig.qlearning(seed=8)
        fleet = NativeFleetBackend(GRID, cfg, num_agents=3, kernel="python")
        fleet.run(120)
        lane = fleet.lane_state(1)
        fleet.run(50)
        untouched = fleet.q[2].copy()
        fleet.load_lane_state(1, lane)
        assert np.array_equal(fleet.q[2], untouched)
        ref = FunctionalSimulator(GRID, cfg, draws=PolicyDraws.from_config(cfg, salt=1))
        ref.run(120)
        assert np.array_equal(fleet.q[1], ref.tables.q.data)


# ---------------------------------------------------------------------- #
# Import hygiene: the package never needs numba
# ---------------------------------------------------------------------- #


def test_import_and_python_tier_never_touch_numba():
    """``import repro.backends`` plus a python-tier run must succeed
    with numba imports hard-blocked — the extra is optional, and only
    the explicit ``kernel='numba'`` tier may reach for it."""
    src_dir = Path(repro.__file__).resolve().parents[1]
    code = textwrap.dedent(
        """
        import importlib.abc, importlib.machinery, sys

        class _BlockLoader(importlib.abc.Loader):
            def create_module(self, spec):
                raise ImportError("numba import blocked by test")

            def exec_module(self, module):
                raise ImportError("numba import blocked by test")

        class _BlockFinder:
            def find_spec(self, name, path=None, target=None):
                if name == "numba" or name.startswith("numba."):
                    return importlib.machinery.ModuleSpec(name, _BlockLoader())
                return None

        sys.meta_path.insert(0, _BlockFinder())

        import repro.backends
        assert "numba" not in sys.modules
        from repro.backends import NativeFleetBackend
        from repro.core.config import QTAccelConfig
        from repro.envs.random_mdp import random_dense_mdp

        mdp = random_dense_mdp(16, 4, seed=9, self_loop_bias=0.5)
        fleet = NativeFleetBackend(
            mdp, QTAccelConfig.qlearning(seed=3), num_agents=2, kernel="python"
        )
        fleet.run(32)
        assert "numba" not in sys.modules
        print("NUMBA-FREE-OK")
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir)
    env.pop(native_mod.KERNEL_ENV_VAR, None)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        cwd=str(src_dir.parent),
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "NUMBA-FREE-OK" in proc.stdout


# ---------------------------------------------------------------------- #
# Perf plumbing: the sweep record and its sentinel gate
# ---------------------------------------------------------------------- #


class TestNativeSweepRecord:
    def _record(self):
        from repro.perf.fleet import run_native_throughput

        fake = iter(float(i) * 0.5 for i in range(10_000))
        return run_native_throughput(
            lane_counts=(4,), repeats=2, quick=True, kernel="python",
            clock=lambda: next(fake),
        )

    def test_record_shape_and_gate(self):
        from repro.perf.fleet import check_native_speedup

        rec = self._record()
        assert rec["kernel"] == "python"
        point = rec["points"]["4"]
        assert {"native", "vectorized", "speedup_vs_vectorized"} <= set(point)
        ok, detail = check_native_speedup(rec, min_speedup=1e9)
        assert not ok and "4" in detail
        ok, _ = check_native_speedup(rec, min_speedup=0.0)
        assert ok

    def test_compare_sentinel_gates_speedup(self):
        from repro.perf.compare import CompareResult, _compare_native

        base = {
            "kernel": "cc", "quick": False,
            "points": {"4096": {
                "native": {"updates_per_sec": 5.0e7},
                "speedup_vs_vectorized": 6.0,
            }},
        }
        worse = {
            "kernel": "cc", "quick": False,
            "points": {"4096": {
                "native": {"updates_per_sec": 4.8e7},
                "speedup_vs_vectorized": 2.0,
            }},
        }
        findings: list = []
        _compare_native(base, worse, gate_time=True, findings=findings)
        verdicts = {f.case: f.verdict for f in findings}
        assert verdicts["native.speedup"] == "regression"
        assert verdicts["native.updates_per_sec"] == "ok"

        # The speedup ratio gates even across machine fingerprints;
        # absolute wall-clock does not.
        findings = []
        _compare_native(base, worse, gate_time=False, findings=findings)
        verdicts = {f.case: f.verdict for f in findings}
        assert verdicts["native.speedup"] == "regression"
        assert verdicts["native.updates_per_sec"] == "skipped"

    def test_compare_sentinel_shape_guard(self):
        from repro.perf.compare import _compare_native

        base = {"kernel": "cc", "quick": False, "points": {}}
        new = {"kernel": "numba", "quick": False, "points": {}}
        findings: list = []
        _compare_native(base, new, gate_time=True, findings=findings)
        assert [f.verdict for f in findings] == ["skipped"]
