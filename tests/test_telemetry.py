"""The telemetry subsystem: counters, traces, sessions, exports.

Covers the disabled-mode guarantees (nothing allocated, nothing paid),
the ring-buffer truncation semantics, the Chrome trace schema, the
paper-invariant checker in both hazard modes, and the attach points of
every engine family.
"""

import json

import pytest

from repro.core.config import QTAccelConfig
from repro.core.pipeline import PipelineStats, QTAccelPipeline
from repro.envs.gridworld import GridWorld
from repro.telemetry import (
    NULL_REGISTRY,
    Counter,
    CounterRegistry,
    TelemetrySession,
    TraceRecorder,
    chrome_trace,
    current_session,
    flatten_profile,
    verify_paper_invariants,
)
from repro.telemetry.trace import TraceEvent


@pytest.fixture(scope="module")
def mdp():
    return GridWorld.random(8, 4, obstacle_density=0.1, seed=3).to_mdp()


# ---------------------------------------------------------------------- #
# Counter registry
# ---------------------------------------------------------------------- #


class TestCounterRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = CounterRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert len(reg) == 1

    def test_kind_mismatch_is_an_error(self):
        reg = CounterRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_counter_value_is_a_plain_attribute(self):
        c = Counter("hot")
        c.value += 3
        c.inc(2)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_histogram_summary(self):
        reg = CounterRegistry()
        h = reg.histogram("lat", bounds=(1, 4, 16))
        for v in (1, 2, 5, 100):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4 and s["min"] == 1 and s["max"] == 100
        assert s["buckets"] == {"le_1": 1, "le_4": 1, "le_16": 1, "overflow": 1}

    def test_tree_nests_on_dots(self):
        reg = CounterRegistry()
        reg.counter("p.stage.S1").value = 7
        reg.gauge("p.size").set(3)
        assert reg.tree() == {"p": {"stage": {"S1": 7}, "size": 3}}

    def test_null_registry_allocates_nothing(self):
        insts = {id(NULL_REGISTRY.counter(f"n{i}")) for i in range(1000)}
        insts |= {id(NULL_REGISTRY.gauge("g")), id(NULL_REGISTRY.histogram("h"))}
        assert len(insts) == 1  # one shared no-op singleton
        assert len(NULL_REGISTRY) == 0
        NULL_REGISTRY.counter("n").inc()
        assert NULL_REGISTRY.as_dict() == {}


# ---------------------------------------------------------------------- #
# Trace ring buffer
# ---------------------------------------------------------------------- #


class TestTraceRecorder:
    def test_truncation_keeps_the_tail(self):
        rec = TraceRecorder(capacity=4)
        for c in range(10):
            rec.record(c, "p", "S1", "issue", c)
        assert len(rec) == 4
        assert rec.total == 10
        assert rec.dropped == 6
        assert [ev.cycle for ev in rec.events()] == [6, 7, 8, 9]

    def test_events_chronological_before_wrap(self):
        rec = TraceRecorder(capacity=8)
        for c in range(3):
            rec.record(c, "p", "S4", "retire", c)
        assert [ev.cycle for ev in rec.events()] == [0, 1, 2]
        assert rec.dropped == 0

    def test_clear(self):
        rec = TraceRecorder(capacity=2)
        rec.record(0, "p", "S1", "issue", 0)
        rec.clear()
        assert len(rec) == 0 and rec.total == 0


# ---------------------------------------------------------------------- #
# Chrome trace schema
# ---------------------------------------------------------------------- #


class TestChromeTrace:
    def test_schema(self):
        events = [
            TraceEvent(0, "pipe0", "S1", "issue", 0),
            TraceEvent(1, "pipe0", "S2", "forward", 0, 2),
            TraceEvent(3, "pipe1", "S4", "retire", 0),
        ]
        doc = chrome_trace(events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(slices) == 3
        # pid per pipeline, tid per stage; 1 cycle = 1 us.
        assert slices[0]["pid"] == 1 and slices[2]["pid"] == 2
        assert slices[0]["tid"] == 1 and slices[2]["tid"] == 4
        assert slices[1]["ts"] == 1.0 and slices[1]["dur"] == 1.0
        assert slices[1]["args"] == {"cycle": 1, "sample": 0, "arg": 2}
        names = {(m["name"], m["args"]["name"]) for m in meta}
        assert ("process_name", "pipe0") in names
        assert ("thread_name", "S3") in names
        # Each pipeline gets one process_name + four thread_name records.
        assert len(meta) == 2 * 5

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            chrome_trace([], us_per_cycle=0)


# ---------------------------------------------------------------------- #
# PipelineStats on the registry (migration compatibility)
# ---------------------------------------------------------------------- #


class TestPipelineStatsCompat:
    def test_positional_construction_and_equality(self):
        a = PipelineStats(10, 7, 7, 0, 1, 5, 2)
        b = PipelineStats(cycles=10, issued=7, retired=7, episodes=1,
                          exploits=5, explores=2)
        assert a == b
        assert a.cycles == 10 and a.retired == 7 and a.explores == 2

    def test_attributes_are_writable(self):
        st = PipelineStats()
        st.cycles += 5
        st.retired = 3
        assert st.as_dict()["cycles"] == 5
        assert st.cycles_per_sample == 5 / 3

    def test_stall_split_sums(self):
        st = PipelineStats()
        st.hazard_stall_cycles = 4
        st.s2_hold_cycles = 2
        st.stall_cycles = 6
        assert st.as_dict()["stall_cycles"] == 6


# ---------------------------------------------------------------------- #
# Sessions, attachment, disabled mode
# ---------------------------------------------------------------------- #


class TestTelemetrySession:
    def test_disabled_by_default(self, mdp):
        pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
        assert pipe._tel is None  # no probe, no recorder, nothing allocated
        pipe.run(50)
        assert pipe.stats.retired == 50

    def test_ambient_attach_and_nesting(self, mdp):
        assert current_session() is None
        with TelemetrySession() as outer:
            assert current_session() is outer
            with TelemetrySession() as inner:
                assert current_session() is inner
                pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
                assert pipe._tel is not None
                assert pipe._tel.recorder is inner.recorder
            assert current_session() is outer
        assert current_session() is None

    def test_attach_dedupes_and_uniquifies(self, mdp):
        s = TelemetrySession(trace=False)
        pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
        name = s.attach(pipe)
        assert s.attach(pipe) == name  # second attach is a no-op
        other = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=4))
        assert s.attach(other, name) == f"{name}_1"

    def test_disabled_trace_still_counts(self, mdp):
        with TelemetrySession(trace=False) as s:
            pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
            pipe.run(100)
        assert s.recorder is None
        assert s.registry.as_dict()["pipe0.stage.S4.active"] == 100

    def test_disabled_and_enabled_runs_agree(self, mdp):
        cfg = QTAccelConfig.qlearning(seed=9)
        plain = QTAccelPipeline(mdp, cfg)
        plain.run(300)
        with TelemetrySession():
            traced = QTAccelPipeline(mdp, cfg)
            traced.run(300)
        assert plain.stats == traced.stats  # instrumentation changes nothing
        assert (plain.q_float() == traced.q_float()).all()


# ---------------------------------------------------------------------- #
# Paper invariants
# ---------------------------------------------------------------------- #


class TestPaperInvariants:
    def test_forward_mode_never_stalls(self, mdp):
        pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
        pipe.run(1000)
        report = verify_paper_invariants(pipe, samples=1000, runs=1)
        assert report.ok
        assert pipe.stats.stall_cycles == 0
        assert pipe.stats.retired == 1000
        assert pipe.stats.cycles == 1000 + 3  # one fill, then 1/cycle

    def test_stall_mode_pays_bubbles(self, mdp):
        cfg = QTAccelConfig.qlearning(seed=3).with_(hazard_mode="stall")
        pipe = QTAccelPipeline(mdp, cfg)
        pipe.run(1000)
        # Drain/sample checks still apply; the never-stall claim doesn't.
        report = verify_paper_invariants(pipe, samples=1000)
        assert report.ok
        assert pipe.stats.hazard_stall_cycles > 0
        assert pipe.stats.cycles > 1003

    def test_strict_failure_raises_with_report(self, mdp):
        pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
        pipe.run(10)
        with pytest.raises(AssertionError, match="retired_equals_samples"):
            verify_paper_invariants(pipe, samples=11)
        report = verify_paper_invariants(pipe, samples=11, strict=False)
        assert not report.ok and len(report.failures()) == 1


# ---------------------------------------------------------------------- #
# Profiles and exports
# ---------------------------------------------------------------------- #


class TestExports:
    def test_profile_round_trip(self, mdp, tmp_path):
        with TelemetrySession() as s:
            pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
            pipe.run(200)
        path = tmp_path / "run.profile.json"
        s.export_profile(path)
        data = json.loads(path.read_text())
        assert data["totals"] == {"cycles": 203, "retired": 200, "ipc": 200 / 203}
        derived = data["pipes"]["pipe0"]["derived"]
        assert derived["cycles_per_sample"] == 203 / 200
        assert 0.97 < derived["occupancy"]["S3"] <= 1.0
        # The pipeline's tables rode along as a snapshot engine.
        assert data["engines"]["pipe0.mem"]["q"]["writes"] == 200

    def test_profile_csv_flat(self, mdp, tmp_path):
        with TelemetrySession(trace=False) as s:
            pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
            pipe.run(10)
        path = tmp_path / "run.profile.csv"
        s.export_profile(path, fmt="csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "key,value"
        assert any(line.startswith("totals.retired,10") for line in lines)
        with pytest.raises(ValueError):
            s.export_profile(path, fmt="xml")

    def test_chrome_trace_export(self, mdp, tmp_path):
        with TelemetrySession() as s:
            pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
            pipe.run(20)
        path = tmp_path / "run.trace.json"
        s.export_chrome_trace(path)
        doc = json.loads(path.read_text())
        retires = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "retire"
        ]
        assert len(retires) == 20

    def test_trace_export_requires_recorder(self, tmp_path):
        s = TelemetrySession(trace=False)
        with pytest.raises(RuntimeError, match="trace=False"):
            s.export_chrome_trace(tmp_path / "x.json")

    def test_flatten_profile(self):
        flat = flatten_profile({"a": {"b": 1, "c": {"d": 2}}, "e": 3})
        assert flat == {"a.b": 1, "a.c.d": 2, "e": 3}

    def test_device_join(self, mdp):
        from repro.core.accelerator import QLearningAccelerator

        with TelemetrySession(trace=False) as s:
            acc = QLearningAccelerator(mdp, seed=3)
            acc.run(500, engine="cycle")
            acc.record_device_telemetry()
        profile = s.profile()
        dev = profile["device"]
        assert dev["cycles"] == 503
        assert dev["clock_mhz"] > 0
        # mJ = mW x s, at the modelled clock for the measured cycles.
        assert dev["energy_mj"] == pytest.approx(
            dev["power_mw"] * dev["wall_time_s"]
        )


# ---------------------------------------------------------------------- #
# Engine attach points
# ---------------------------------------------------------------------- #


class TestEngineWiring:
    def test_shared_pipelines(self, mdp):
        from repro.core.multi_pipeline import SharedPipelines

        with TelemetrySession(trace=False) as s:
            shared = SharedPipelines(mdp, QTAccelConfig.qlearning(seed=3))
            shared.run(100)
        profile = s.profile()
        assert set(profile["pipes"]) == {"pipe0", "pipe1"}
        assert profile["totals"]["retired"] == 200
        # The shared table set attached once (id-deduped via pipe0).
        assert "pipe0.mem" in profile["engines"]
        assert "pipe1.mem" not in profile["engines"]

    def test_independent_pipelines_cycle(self, mdp):
        from repro.core.multi_pipeline import IndependentPipelinesCycle

        with TelemetrySession(trace=False) as s:
            sys_ = IndependentPipelinesCycle(
                [mdp, mdp], QTAccelConfig.qlearning(seed=3)
            )
            sys_.run(50)
        profile = s.profile()
        assert len(profile["pipes"]) == 2
        assert profile["engines"]["clock"]["cycle"] == sys_.sim.cycle

    def test_batch_simulator(self, mdp):
        from repro.core.batch import BatchIndependentSimulator

        with TelemetrySession(trace=False) as s:
            fleet = BatchIndependentSimulator(mdp, QTAccelConfig.qlearning(seed=3),
                                              num_agents=4)
            fleet.run(25)
        snap = s.profile()["engines"]["batch"]
        assert snap["agents"] == 4
        assert snap["total_samples"] == 100

    def test_bandit_counters(self):
        from repro.core.bandit_accel import Exp3Accelerator
        from repro.envs.bandits import BanditEnv, NormalArm

        env = BanditEnv([NormalArm(float(i)) for i in range(8)], seed=4)
        with TelemetrySession(trace=False) as s:
            accel = Exp3Accelerator(env, seed=4)
            accel.run(64)
        counters = s.registry.as_dict()
        assert counters["bandit.exp3.pulls"] == 64
        assert counters["bandit.exp3.selection_cycles"] == 64 * 3  # ceil(log2 8)

    def test_detached_bandit_has_no_group(self):
        from repro.core.bandit_accel import Ucb1Accelerator
        from repro.envs.bandits import BanditEnv, NormalArm

        accel = Ucb1Accelerator(BanditEnv([NormalArm(float(i)) for i in range(4)]))
        assert accel._tel is None
        accel.run(16)  # runs fine without a session


# ---------------------------------------------------------------------- #
# Report CLI
# ---------------------------------------------------------------------- #


class TestReportCli:
    def test_renders_profile_and_trace(self, mdp, tmp_path, capsys):
        from repro.telemetry.report import main

        with TelemetrySession() as s:
            pipe = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
            pipe.run(40)
        prof = tmp_path / "p.json"
        trace = tmp_path / "t.json"
        s.export_profile(prof)
        s.export_chrome_trace(trace)

        assert main([str(prof), "--counters"]) == 0
        out = capsys.readouterr().out
        assert "telemetry profile" in out and "pipe0" in out

        assert main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "chrome trace digest" in out and "retire" in out

    def test_unreadable_file(self, tmp_path, capsys):
        from repro.telemetry.report import main

        assert main([str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
