"""Tests for convergence metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    convergence_report,
    greedy_rollout,
    policy_agreement,
    q_rmse,
    success_rate,
)
from repro.envs.random_mdp import chain_mdp


class TestPolicyAgreement:
    def test_perfect(self):
        q = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert policy_agreement(q, q) == 1.0

    def test_zero(self):
        q = np.array([[1.0, 0.0]])
        q_star = np.array([[0.0, 1.0]])
        assert policy_agreement(q, q_star) == 0.0

    def test_ties_count_as_optimal(self):
        q = np.array([[1.0, 0.0]])
        q_star = np.array([[5.0, 5.0]])
        assert policy_agreement(q, q_star) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            policy_agreement(np.zeros((2, 2)), np.zeros((3, 2)))


class TestRmse:
    def test_zero_for_equal(self):
        q = np.ones((3, 2))
        assert q_rmse(q, q) == 0.0

    def test_known_value(self):
        q = np.zeros((2, 2))
        q_star = np.full((2, 2), 2.0)
        assert q_rmse(q, q_star) == 2.0

    def test_mask(self):
        q = np.zeros((2, 2))
        q_star = np.array([[0.0, 0.0], [9.0, 9.0]])
        mask = np.array([True, False])
        assert q_rmse(q, q_star, mask=mask) == 0.0

    def test_empty_mask(self):
        q = np.zeros((2, 2))
        assert q_rmse(q, q, mask=np.array([False, False])) == 0.0


class TestRollout:
    def test_optimal_policy_reaches_goal(self):
        mdp = chain_mdp(5, reward=100.0)
        q = mdp.optimal_q(0.9)
        ret, steps, ok = greedy_rollout(mdp, q, 0, gamma=0.9)
        assert ok
        assert steps == 4
        assert ret == pytest.approx(100.0 * 0.9**3)

    def test_stuck_policy_detected(self):
        mdp = chain_mdp(5)
        q = np.zeros((5, 2))
        q[:, 1] = 1.0  # prefer the stay-in-place action
        _, _, ok = greedy_rollout(mdp, q, 0, gamma=0.9)
        assert not ok

    def test_success_rate(self):
        mdp = chain_mdp(5)
        q_star = mdp.optimal_q(0.9)
        assert success_rate(mdp, q_star, gamma=0.9) == 1.0
        stuck_q = np.zeros((5, 2))
        stuck_q[:, 1] = 1.0  # prefer the stay-in-place action everywhere
        assert success_rate(mdp, stuck_q, gamma=0.9) == 0.0


class TestConvergenceReport:
    def test_oracle_is_perfect(self):
        mdp = chain_mdp(6)
        q_star = mdp.optimal_q(0.9)
        rep = convergence_report(mdp, q_star, gamma=0.9, samples=0)
        assert rep.agreement == 1.0
        assert rep.rmse == 0.0
        assert rep.success == 1.0

    def test_str(self):
        mdp = chain_mdp(4)
        rep = convergence_report(mdp, mdp.optimal_q(0.9), gamma=0.9, samples=10)
        assert "samples=10" in str(rep)
