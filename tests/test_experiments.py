"""Smoke and shape tests for the experiment harness."""

import pytest

from repro.experiments import (
    ExperimentResult,
    experiment_ids,
    experiment_title,
    run_experiment,
)

ALL_IDS = [
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "fig7",
    "sota",
    "fig8",
    "fig9",
    "mab",
    "ablation_hazards",
    "ablation_qmax",
    "ablation_wordlen",
    "algorithms",
    "prob_policy",
    "fleet",
    "table2_cache",
    "convergence",
    "cliff",
    "fault_campaign",
    "chaos_campaign",
]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_IDS) == set(experiment_ids())

    def test_titles_nonempty(self):
        for eid in experiment_ids():
            assert experiment_title(eid)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig42")


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_runs_quick(exp_id):
    """Every registered experiment regenerates its artifact in quick
    mode, produces non-empty rows and formats cleanly."""
    result = run_experiment(exp_id, quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert all(len(row) == len(result.headers) for row in result.rows)
    text = result.format()
    assert exp_id in text
    assert len(text.splitlines()) >= len(result.rows) + 2


class TestPaperShapes:
    """Assertions on the reproduced numbers themselves (quick mode)."""

    def test_fig4_matches_paper_curve(self):
        res = run_experiment("fig4", quick=True)
        by_size = {row[0]: row for row in res.rows}
        # bits% within 10 relative points of the paper's value at >= 1024
        for s in (1024, 4096, 16384, 65536, 262144):
            ours, paper = by_size[s][3], by_size[s][4]
            assert paper is not None
            assert abs(ours - paper) / paper < 0.2

    def test_fig6_matches_paper_series(self):
        res = run_experiment("fig6", quick=True)
        for row in res.rows:
            s, ql, sarsa, paper = row[0], row[1], row[2], row[3]
            if paper is None:
                continue
            assert abs(ql - paper) < 2.5, s
            assert abs(sarsa - paper) < 2.5, s

    def test_fig7_constant_vs_linear(self):
        res = run_experiment("fig7", quick=True)
        qt = {row[1] for row in res.rows}
        assert qt == {4}
        baselines = [row[2] for row in res.rows]
        assert baselines[0] < baselines[-1]

    def test_table2_gap_is_orders_of_magnitude(self):
        res = run_experiment("table2", quick=True)
        for row in res.rows:
            speedup = row[5]
            assert speedup > 50

    def test_fig8_doubling(self):
        res = run_experiment("fig8", quick=True)
        for row in res.rows:
            assert row[1] > 1.9  # samples/cycle

    def test_ablation_qmax_tells_the_story(self):
        res = run_experiment("ablation_qmax", quick=True)
        rows = {(r[0], r[1]): r for r in res.rows}
        # SARSA: monotonic never finishes an episode; follow does.
        assert rows[("sarsa", "monotonic")][2] == 0
        assert rows[("sarsa", "follow")][2] > 0
        assert rows[("sarsa", "follow")][5] > rows[("sarsa", "monotonic")][5]
