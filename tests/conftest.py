"""Shared fixtures for the QTAccel test suite."""

from __future__ import annotations

import pytest

from repro.core.config import QTAccelConfig
from repro.envs.gridworld import GridWorld
from repro.envs.random_mdp import chain_mdp, random_dense_mdp


@pytest.fixture(scope="session")
def grid8():
    """An 8x8 grid world with obstacles (session-cached DenseMdp)."""
    return GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()


@pytest.fixture(scope="session")
def grid8_world():
    """The GridWorld object behind :func:`grid8`."""
    return GridWorld.random(8, 4, obstacle_density=0.15, seed=2)


@pytest.fixture(scope="session")
def empty16():
    """A 16x16 obstacle-free grid world."""
    return GridWorld.empty(16, 4).to_mdp()


@pytest.fixture(scope="session")
def chain6():
    """A 6-state corridor with known Q*."""
    return chain_mdp(6)


@pytest.fixture(scope="session")
def loopy_mdp():
    """A random MDP with heavy self-loops (hazard stress)."""
    return random_dense_mdp(16, 4, seed=9, self_loop_bias=0.5)


@pytest.fixture
def ql_config():
    return QTAccelConfig.qlearning(seed=5)


@pytest.fixture
def sarsa_config():
    return QTAccelConfig.sarsa(seed=5)
