"""Lane-leasing surface: reset_lane / apply_transition / query_action.

The serving stack (`repro.serve`) leans on one contract: lane ``k`` of
any fleet backend, driven through the three lane ops, is bit-identical
to a standalone :class:`FunctionalSimulator` seeded with the same salt.
These tests pin that contract backend by backend, preset by preset and
qmax mode by qmax mode — they are the foundation the gateway's
bit-exactness tests in ``test_serve.py`` stand on.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.backends.base import make_fleet_backend
from repro.backends.sharded import ShardedFleetBackend
from repro.backends.vectorized import VectorizedFleetBackend
from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.policies import PolicyDraws
from repro.serve.session import serve_world

S, A = 16, 4
WORLD = serve_world(S, A)


def _reference(config, salt: int) -> FunctionalSimulator:
    return FunctionalSimulator(
        WORLD, config, draws=PolicyDraws.from_config(config, salt=salt)
    )


def _build(backend: str, config, k: int):
    if backend == "sharded":
        return ShardedFleetBackend(
            WORLD, config, num_agents=k, num_workers=2, mp_context="fork"
        )
    if backend == "scalar":
        return make_fleet_backend(WORLD, config, backend="scalar", num_agents=k)
    if backend == "native":
        from repro.backends.native import NativeFleetBackend

        # Lane ops route through the shared vectorized path; the
        # interpreted tier keeps this test independent of numba/cc.
        return NativeFleetBackend(WORLD, config, num_agents=k, kernel="python")
    return VectorizedFleetBackend(WORLD, config, num_agents=k)


def _drive(fleet, sims, *, steps: int, seed: int) -> None:
    """Interleave the three lane ops identically on fleet and references."""
    rng = random.Random(seed)
    lanes = list(range(len(sims)))
    for _ in range(steps):
        k = rng.choice(lanes)
        roll = rng.random()
        if roll < 0.70:
            s, a = rng.randrange(S), rng.randrange(A)
            r, ns = rng.uniform(-2.0, 2.0), rng.randrange(S)
            t = rng.random() < 0.05
            got = fleet.apply_transition(k, s, a, r, ns, t)
            want = sims[k].apply_transition(s, a, r, ns, t)
            assert got == want
        elif roll < 0.90:
            s = rng.randrange(S)
            got = fleet.query_action(k, s, True)
            want = sims[k].query_action(s, explore=True)
            assert got == want
        else:
            s = rng.randrange(S)
            got = fleet.query_action(k, s, False)
            want = sims[k].query_action(s, explore=False)
            assert got == want


def _assert_tables_equal(fleet, sims) -> None:
    for k, sim in enumerate(sims):
        assert [int(v) for v in fleet.q[k]] == [int(v) for v in sim.tables.q.data]


@pytest.mark.parametrize("backend", ["vectorized", "scalar", "native"])
@pytest.mark.parametrize("preset", ["qlearning", "sarsa"])
@pytest.mark.parametrize("qmax_mode", ["monotonic", "follow", "exact"])
def test_lane_ops_match_functional(backend, preset, qmax_mode):
    """Every lane op returns/updates bit-identically to the scalar sim."""
    cfg = getattr(QTAccelConfig, preset)(seed=7, qmax_mode=qmax_mode)
    fleet = _build(backend, cfg, k=3)
    salts = [100, 101, 102]
    for k, salt in enumerate(salts):
        fleet.reset_lane(k, salt)
    sims = [_reference(cfg, salt) for salt in salts]
    _drive(fleet, sims, steps=150, seed=99)
    _assert_tables_equal(fleet, sims)


@pytest.mark.parametrize("preset", ["qlearning", "sarsa"])
def test_lane_ops_match_functional_sharded(preset):
    """Borrowed-lane ops on the process-parallel backend stay bit-exact."""
    cfg = getattr(QTAccelConfig, preset)(seed=3)
    fleet = _build("sharded", cfg, k=4)
    try:
        salts = [200 + k for k in range(4)]
        for k, salt in enumerate(salts):
            fleet.reset_lane(k, salt)
        sims = [_reference(cfg, salt) for salt in salts]
        _drive(fleet, sims, steps=120, seed=5)
        _assert_tables_equal(fleet, sims)
    finally:
        fleet.close()


def test_reset_lane_is_pristine_and_isolated():
    """reset_lane re-seeds one lane exactly; the others are untouched."""
    cfg = QTAccelConfig.qlearning(seed=11)
    fleet = _build("vectorized", cfg, k=3)
    rng = random.Random(1)
    for _ in range(60):
        k = rng.randrange(3)
        fleet.apply_transition(
            k, rng.randrange(S), rng.randrange(A), rng.uniform(-1, 1),
            rng.randrange(S), False,
        )
    before = {k: np.array(fleet.q[k], copy=True) for k in (0, 2)}
    fleet.reset_lane(1, 500)
    fresh = _reference(cfg, 500)
    assert [int(v) for v in fleet.q[1]] == [int(v) for v in fresh.tables.q.data]
    for k in (0, 2):
        assert np.array_equal(np.asarray(fleet.q[k]), before[k])
    # The re-seeded lane continues bit-exactly from its pristine state.
    sims = [None, fresh, None]
    for _ in range(40):
        s, a = rng.randrange(S), rng.randrange(A)
        r, ns = rng.uniform(-1, 1), rng.randrange(S)
        assert fleet.apply_transition(1, s, a, r, ns, False) == fresh.apply_transition(
            s, a, r, ns, False
        )


def test_greedy_query_consumes_no_draw():
    """explore=False is a pure table read: no LFSR advance, no journal need."""
    cfg = QTAccelConfig.qlearning(seed=2)
    fleet = _build("vectorized", cfg, k=1)
    fleet.reset_lane(0, 77)
    ref = _reference(cfg, 77)
    rng = random.Random(8)
    for _ in range(50):
        s, a = rng.randrange(S), rng.randrange(A)
        r, ns = rng.uniform(-1, 1), rng.randrange(S)
        fleet.apply_transition(0, s, a, r, ns, False)
        ref.apply_transition(s, a, r, ns, False)
        # Greedy queries on the fleet only — if they consumed a draw the
        # streams would diverge at the next e-greedy op.
        fleet.query_action(0, rng.randrange(S), False)
    for _ in range(10):
        s = rng.randrange(S)
        assert fleet.query_action(0, s, True) == ref.query_action(s, explore=True)
    assert [int(v) for v in fleet.q[0]] == [int(v) for v in ref.tables.q.data]


def test_lane_op_range_validation():
    cfg = QTAccelConfig.qlearning(seed=1)
    fleet = _build("vectorized", cfg, k=2)
    with pytest.raises((ValueError, IndexError)):
        fleet.reset_lane(2, 10)
    with pytest.raises((ValueError, IndexError)):
        fleet.reset_lane(-1, 10)
