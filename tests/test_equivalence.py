"""Cycle-accurate <-> functional simulator equivalence.

The reproduction's central correctness claim: the pipelined machine with
full forwarding computes exactly the sequential algorithm, so the
cycle-accurate simulator (hazards, forwarding, stage registers) and the
functional simulator (a plain loop) must produce *bit-identical* update
traces and Q tables for every algorithm, hazard mode (forward/stall) and
environment.  Any forwarding bug breaks these tests immediately.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.pipeline import QTAccelPipeline
from repro.envs.gridworld import GridWorld
from repro.envs.random_mdp import chain_mdp, random_dense_mdp


def assert_equivalent(mdp, cfg, n=1500, *, behavior_lag=True):
    pipe = QTAccelPipeline(mdp, cfg)
    tp = pipe.enable_trace()
    func = FunctionalSimulator(mdp, cfg, behavior_lag=behavior_lag)
    tf = func.enable_trace()
    pipe.run(n)
    func.run(n)
    assert tp == tf, _first_divergence(tp, tf)
    assert np.array_equal(pipe.tables.q.data, func.tables.q.data)
    assert np.array_equal(pipe.tables.qmax.data, func.tables.qmax.data)
    assert np.array_equal(pipe.tables.qmax_action.data, func.tables.qmax_action.data)
    assert pipe.stats.episodes == func.stats.episodes
    assert pipe.stats.exploits == func.stats.exploits


def _first_divergence(tp, tf):
    for i, (a, b) in enumerate(zip(tp, tf)):
        if a != b:
            return f"first divergence at sample {i}: pipeline={a} functional={b}"
    return f"length mismatch: {len(tp)} vs {len(tf)}"


GRID = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
LOOPY = random_dense_mdp(16, 4, seed=9, self_loop_bias=0.5)
CHAIN = chain_mdp(5)


class TestForwardMode:
    @pytest.mark.parametrize("seed", [1, 5, 23])
    def test_qlearning_grid(self, seed):
        assert_equivalent(GRID, QTAccelConfig.qlearning(seed=seed))

    @pytest.mark.parametrize("seed", [1, 5, 23])
    def test_sarsa_grid(self, seed):
        assert_equivalent(GRID, QTAccelConfig.sarsa(seed=seed))

    def test_qlearning_loopy(self):
        assert_equivalent(LOOPY, QTAccelConfig.qlearning(seed=7))

    def test_sarsa_loopy(self):
        assert_equivalent(LOOPY, QTAccelConfig.sarsa(seed=7))

    def test_chain_constant_hazards(self):
        assert_equivalent(CHAIN, QTAccelConfig.qlearning(seed=3))

    def test_follow_qmax_mode(self):
        assert_equivalent(GRID, QTAccelConfig.sarsa(seed=11, qmax_mode="follow"))
        assert_equivalent(LOOPY, QTAccelConfig.qlearning(seed=11, qmax_mode="follow"))

    def test_high_epsilon_sarsa(self):
        assert_equivalent(GRID, QTAccelConfig.sarsa(seed=13, epsilon=0.9))

    def test_alpha_one(self):
        assert_equivalent(LOOPY, QTAccelConfig.qlearning(seed=2, alpha=1.0))

    def test_gamma_zero(self):
        assert_equivalent(LOOPY, QTAccelConfig.qlearning(seed=2, gamma=0.0))

    def test_nearest_rounding_format(self):
        cfg = QTAccelConfig.qlearning(seed=4)
        cfg = cfg.with_(q_format=cfg.q_format.with_(rounding="nearest"))
        assert_equivalent(LOOPY, cfg)


class TestStallMode:
    """Stall mode trades cycles for the same (strictly sequential)
    trajectory; the functional twin is behavior_lag=False."""

    @pytest.mark.parametrize("seed", [1, 9])
    def test_qlearning(self, seed):
        assert_equivalent(
            LOOPY,
            QTAccelConfig.qlearning(seed=seed, hazard_mode="stall"),
            behavior_lag=False,
        )

    @pytest.mark.parametrize("seed", [1, 9])
    def test_sarsa(self, seed):
        assert_equivalent(
            GRID,
            QTAccelConfig.sarsa(seed=seed, hazard_mode="stall"),
            behavior_lag=False,
        )

    def test_sarsa_loopy(self):
        assert_equivalent(
            LOOPY,
            QTAccelConfig.sarsa(seed=4, hazard_mode="stall"),
            behavior_lag=False,
        )


class TestStaleModeDiverges:
    def test_stale_differs_on_hazard_heavy_mdp(self):
        mdp = random_dense_mdp(16, 4, seed=44, self_loop_bias=0.6)
        qs = {}
        for mode in ("forward", "stale"):
            p = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=43, hazard_mode=mode))
            p.run(4000)
            qs[mode] = p.tables.q.data.copy()
        assert not np.array_equal(qs["forward"], qs["stale"])


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mdp_seed=st.integers(min_value=0, max_value=100),
    loop_bias=st.sampled_from([0.0, 0.3, 0.7]),
    algorithm=st.sampled_from(["qlearning", "sarsa"]),
)
@settings(max_examples=25, deadline=None)
def test_equivalence_property(seed, mdp_seed, loop_bias, algorithm):
    """Equivalence holds for arbitrary seeds and transition structure."""
    mdp = random_dense_mdp(12, 4, seed=mdp_seed, self_loop_bias=loop_bias)
    preset = QTAccelConfig.qlearning if algorithm == "qlearning" else QTAccelConfig.sarsa
    assert_equivalent(mdp, preset(seed=seed), n=400)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_stall_equivalence_property(seed):
    mdp = random_dense_mdp(12, 4, seed=3, self_loop_bias=0.5)
    assert_equivalent(
        mdp,
        QTAccelConfig.sarsa(seed=seed, hazard_mode="stall"),
        n=400,
        behavior_lag=False,
    )
