"""Unit and property tests for the Fxp scalar value type."""

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint.format import COEF_FORMAT, Q_FORMAT, FxpFormat
from repro.fixedpoint.scalar import Fxp

F84 = FxpFormat(wordlen=8, frac=4)


class TestConstruction:
    def test_from_float_roundtrip(self):
        x = Fxp.from_float(3.25, Q_FORMAT)
        assert x.to_float() == 3.25

    def test_out_of_range_raw_rejected(self):
        with pytest.raises(ValueError):
            Fxp(1 << 20, F84)

    def test_cast_down_loses_precision(self):
        x = Fxp.from_float(1.03125, Q_FORMAT)  # 1 + 2/64
        y = x.cast(F84)  # lsb 1/16
        assert y.to_float() == 1.0

    def test_cast_up_exact(self):
        x = Fxp.from_float(1.25, F84)
        y = x.cast(Q_FORMAT)
        assert y.to_float() == 1.25

    def test_cast_saturates(self):
        x = Fxp.from_float(100.0, Q_FORMAT)
        y = x.cast(F84)
        assert y.raw == F84.raw_max


class TestArithmetic:
    def test_add(self):
        a = Fxp.from_float(1.5, Q_FORMAT)
        assert (a + 2.25).to_float() == 3.75

    def test_sub(self):
        a = Fxp.from_float(1.5, Q_FORMAT)
        assert (a - 2.0).to_float() == -0.5

    def test_mul(self):
        a = Fxp.from_float(3.25, Q_FORMAT)
        b = Fxp.from_float(-1.5, Q_FORMAT)
        assert (a * b).to_float() == -4.875

    def test_mul_mixed_formats(self):
        """A coefficient x Q-word product lands in the Q format."""
        q = Fxp.from_float(10.0, Q_FORMAT)
        alpha = Fxp.from_float(0.5, COEF_FORMAT)
        assert (q * alpha).to_float() == 5.0

    def test_add_saturates(self):
        a = Fxp.from_float(Q_FORMAT.max_value, Q_FORMAT)
        assert (a + a).raw == Q_FORMAT.raw_max

    def test_neg(self):
        a = Fxp.from_float(2.5, Q_FORMAT)
        assert (-a).to_float() == -2.5

    def test_neg_of_min_saturates(self):
        a = Fxp(Q_FORMAT.raw_min, Q_FORMAT)
        assert (-a).raw == Q_FORMAT.raw_max

    def test_sub_of_min_operand_saturates(self):
        a = Fxp.from_float(0.0, Q_FORMAT)
        b = Fxp(Q_FORMAT.raw_min, Q_FORMAT)
        assert (a - b).raw == Q_FORMAT.raw_max


class TestComparisons:
    def test_ordering(self):
        a = Fxp.from_float(1.0, Q_FORMAT)
        b = Fxp.from_float(2.0, Q_FORMAT)
        assert a < b and b > a and a <= b and b >= a

    def test_cross_format_equality(self):
        a = Fxp.from_float(1.5, Q_FORMAT)
        b = Fxp.from_float(1.5, F84)
        assert a == b

    def test_compare_with_real(self):
        a = Fxp.from_float(1.5, Q_FORMAT)
        assert a == 1.5
        assert a > 1.0
        assert a < 2

    def test_hash_consistent_with_eq(self):
        a = Fxp.from_float(1.5, Q_FORMAT)
        b = Fxp.from_float(1.5, Q_FORMAT)
        assert hash(a) == hash(b)


values = st.floats(min_value=-6.0, max_value=6.0, allow_nan=False)


@given(values, values)
def test_add_commutes(x, y):
    a = Fxp.from_float(x, Q_FORMAT)
    b = Fxp.from_float(y, Q_FORMAT)
    assert (a + b).raw == (b + a).raw


@given(values)
def test_add_zero_identity(x):
    a = Fxp.from_float(x, Q_FORMAT)
    assert (a + 0.0).raw == a.raw


@given(values)
def test_mul_one_identity(x):
    a = Fxp.from_float(x, Q_FORMAT)
    one = Fxp.from_float(1.0, COEF_FORMAT)
    assert (a * one).raw == a.raw


@given(values, values)
def test_mul_close_to_float(x, y):
    """The fixed product stays within the accumulated rounding bound."""
    a = Fxp.from_float(x, Q_FORMAT)
    b = Fxp.from_float(y, Q_FORMAT)
    exact = a.to_float() * b.to_float()
    exact = max(Q_FORMAT.min_value, min(Q_FORMAT.max_value, exact))
    assert abs((a * b).to_float() - exact) <= Q_FORMAT.resolution
