"""Tests for pipeline registers and the cycle-loop driver."""

import pytest

from repro.rtl.clock import Simulation
from repro.rtl.register import PipelineRegister


class TestPipelineRegister:
    def test_starts_invalid(self):
        r = PipelineRegister("r")
        assert not r.valid
        assert r.value is None

    def test_stage_then_tick(self):
        r = PipelineRegister("r")
        r.stage(42)
        assert not r.valid  # not visible before the edge
        r.tick()
        assert r.valid
        assert r.value == 42

    def test_undriven_tick_inserts_bubble(self):
        r = PipelineRegister("r")
        r.stage(1)
        r.tick()
        r.tick()  # nothing staged this cycle
        assert not r.valid

    def test_hold_preserves(self):
        r = PipelineRegister("r")
        r.stage(7)
        r.tick()
        r.hold()
        r.tick()
        assert r.valid and r.value == 7

    def test_stage_bubble(self):
        r = PipelineRegister("r")
        r.stage(7)
        r.tick()
        r.stage_bubble()
        r.tick()
        assert not r.valid

    def test_flush(self):
        r = PipelineRegister("r")
        r.stage(7)
        r.tick()
        r.stage(8)
        r.flush()
        assert not r.valid
        r.tick()
        assert not r.valid


class Counter:
    """Minimal clocked component for driver tests."""

    def __init__(self):
        self.evals = 0
        self.ticks = 0

    def eval(self):
        self.evals += 1

    def tick(self):
        self.ticks += 1


class TestSimulation:
    def test_step_calls_eval_then_tick(self):
        sim = Simulation()
        c = Counter()
        sim.add(c)
        sim.step()
        assert c.evals == 1 and c.ticks == 1
        assert sim.cycle == 1

    def test_eval_order_is_registration_order(self):
        order = []

        class Tagger:
            def __init__(self, tag):
                self.tag = tag

            def eval(self):
                order.append(self.tag)

            def tick(self):
                pass

        sim = Simulation()
        sim.add(Tagger("a"))
        sim.add(Tagger("b"))
        sim.step()
        assert order == ["a", "b"]

    def test_run(self):
        sim = Simulation()
        c = Counter()
        sim.add(c)
        assert sim.run(10) == 10
        assert c.ticks == 10

    def test_run_rejects_negative(self):
        with pytest.raises(ValueError):
            Simulation().run(-1)

    def test_run_until(self):
        sim = Simulation()
        c = Counter()
        sim.add(c)
        spent = sim.run_until(lambda: c.ticks >= 5)
        assert spent == 5

    def test_run_until_timeout(self):
        sim = Simulation()
        sim.add(Counter())
        with pytest.raises(RuntimeError):
            sim.run_until(lambda: False, max_cycles=10)

    def test_add_rejects_non_clocked(self):
        with pytest.raises(TypeError):
            Simulation().add(object())
