"""Tests for the multi-agent pipeline deployments (Figs. 8 and 9)."""

import numpy as np
import pytest

from repro.core.config import QTAccelConfig
from repro.core.metrics import convergence_report
from repro.core.multi_pipeline import (
    IndependentPipelines,
    SharedPipelines,
    max_independent_pipelines,
    run_shared_functional,
)
from repro.envs.gridworld import GridWorld
from repro.envs.multi_agent import partition_grid


class TestSharedPipelines:
    def test_throughput_doubles(self, empty16):
        sp = SharedPipelines(empty16, QTAccelConfig.qlearning(seed=4))
        stats = sp.run(2000)
        assert stats.samples == 4000
        assert stats.samples_per_cycle > 1.99

    def test_agents_decorrelated(self, empty16):
        sp = SharedPipelines(empty16, QTAccelConfig.qlearning(seed=4))
        sp.run(200)
        a, b = sp.pipes
        assert a.draws.action.lfsr.state != b.draws.action.lfsr.state

    def test_collisions_rare_and_counted(self, empty16):
        sp = SharedPipelines(empty16, QTAccelConfig.qlearning(seed=4))
        stats = sp.run(5000)
        # collision rate in the ballpark of 1/|S|
        assert stats.collision_rate < 5.0 / empty16.num_states
        assert stats.write_collisions >= 0

    def test_learning_happens(self, empty16):
        cfg = QTAccelConfig.qlearning(seed=4)
        sp = SharedPipelines(empty16, cfg)
        stats = sp.run(40_000)
        rep = convergence_report(empty16, sp.q_float(), gamma=cfg.gamma, samples=stats.samples)
        assert rep.success > 0.9

    def test_resource_report_shares_tables(self, empty16):
        sp = SharedPipelines(empty16, QTAccelConfig.qlearning())
        rep = sp.resource_report()
        assert rep.dsp == 8  # two pipelines
        single = QTAccelConfig.qlearning()
        from repro.device.resources import estimate_resources

        one = estimate_resources(empty16.num_states, empty16.num_actions, single)
        assert rep.bram_blocks == one.bram_blocks  # one table set

    def test_throughput_estimate_two_pipelines(self, empty16):
        sp = SharedPipelines(empty16, QTAccelConfig.qlearning())
        est = sp.throughput_estimate()
        assert est.pipelines == 2
        assert est.msps > 300  # ~2x 188


class TestSharedFunctional:
    def test_matches_cycle_statistically(self, empty16):
        cfg = QTAccelConfig.qlearning(seed=4)
        sp = SharedPipelines(empty16, cfg)
        st_cycle = sp.run(20_000)
        rep_c = convergence_report(empty16, sp.q_float(), gamma=cfg.gamma, samples=st_cycle.samples)
        res = run_shared_functional(empty16, cfg, 20_000)
        rep_f = convergence_report(empty16, res.q, gamma=cfg.gamma, samples=res.samples)
        assert abs(rep_c.success - rep_f.success) < 0.15
        assert abs(rep_c.agreement - rep_f.agreement) < 0.2

    def test_collision_counting(self):
        """On a tiny world two agents collide constantly."""
        mdp = GridWorld.empty(2, 4).to_mdp()
        res = run_shared_functional(mdp, QTAccelConfig.qlearning(seed=1), 2000)
        assert res.write_collisions > 0

    def test_three_agents(self, empty16):
        res = run_shared_functional(empty16, QTAccelConfig.qlearning(seed=2), 1000, num_agents=3)
        assert res.samples == 3000


class TestIndependentPipelines:
    def test_runs_all_tiles(self):
        tiles = partition_grid(16, 4)
        pipes = IndependentPipelines(tiles, QTAccelConfig.qlearning(seed=6))
        stats = pipes.run(5000)
        assert stats.pipelines == 4
        assert stats.samples == 20_000

    def test_each_tile_learns(self):
        tiles = partition_grid(16, 4)
        cfg = QTAccelConfig.qlearning(seed=6)
        pipes = IndependentPipelines(tiles, cfg)
        pipes.run(30_000)
        for i, tile in enumerate(tiles):
            rep = convergence_report(tile, pipes.q_float(i), gamma=cfg.gamma, samples=30_000)
            assert rep.success > 0.9

    def test_tiles_get_distinct_streams(self):
        tiles = partition_grid(16, 4)
        pipes = IndependentPipelines(tiles, QTAccelConfig.qlearning(seed=6))
        pipes.run(200)
        qs = [pipes.q_float(i) for i in range(4)]
        assert not np.array_equal(qs[0], qs[1])

    def test_aggregate_resources(self):
        tiles = partition_grid(16, 4)
        pipes = IndependentPipelines(tiles, QTAccelConfig.qlearning())
        rep = pipes.resource_report()
        assert rep.dsp == 16  # 4 pipelines x 4 DSPs
        assert pipes.fits_device()

    def test_throughput_scales(self):
        t1 = IndependentPipelines(partition_grid(16, 1), QTAccelConfig.qlearning())
        t4 = IndependentPipelines(partition_grid(16, 4), QTAccelConfig.qlearning())
        assert t4.throughput_estimate().msps > 3.5 * t1.throughput_estimate().msps

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IndependentPipelines([], QTAccelConfig.qlearning())


class TestMaxPipelines:
    def test_bram_bound(self):
        cfg = QTAccelConfig.qlearning()
        small = max_independent_pipelines(GridWorld.empty(16, 4).to_mdp(), cfg)
        big = max_independent_pipelines(GridWorld.empty(256, 4).to_mdp(), cfg)
        assert small > big
        assert big >= 1


class TestIndependentCycle:
    def test_aggregate_rate_and_parity(self):
        from repro.core.multi_pipeline import IndependentPipelinesCycle

        tiles = partition_grid(16, 4)
        cfg = QTAccelConfig.qlearning(seed=6)
        cyc = IndependentPipelinesCycle(tiles, cfg)
        cyc.run(800)
        # N samples retire per shared clock cycle (after fill)
        assert cyc.samples_per_cycle > 3.9
        fun = IndependentPipelines(tiles, cfg)
        fun.run(800)
        for i in range(4):
            assert np.array_equal(cyc.q_float(i), fun.q_float(i))

    def test_rejects_empty(self):
        from repro.core.multi_pipeline import IndependentPipelinesCycle

        with pytest.raises(ValueError):
            IndependentPipelinesCycle([], QTAccelConfig.qlearning())
