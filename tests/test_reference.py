"""Tests for the software reference implementations."""

import numpy as np
import pytest

from repro.core.metrics import policy_agreement, success_rate
from repro.envs.gridworld import GridWorld
from repro.envs.random_mdp import chain_mdp
from repro.reference import DictQLearning, DictSarsa, FloatQLearning, FloatSarsa


class TestDictQLearning:
    def test_converges_on_chain(self):
        mdp = chain_mdp(5, reward=100.0)
        learner = DictQLearning(mdp, alpha=0.5, gamma=0.5, seed=1)
        learner.run(20_000)
        assert learner.greedy_action(0) == 0
        assert learner.greedy_action(3) == 0

    def test_uses_coordinate_keys_for_grids(self):
        """§VI-E: the CPU baseline indexes by state coordinate tuples."""
        mdp = GridWorld.empty(4).to_mdp()
        learner = DictQLearning(mdp, seed=1)
        learner.run(500)
        assert all(isinstance(k, tuple) and len(k) == 2 for k in learner.q)

    def test_uses_int_keys_otherwise(self):
        learner = DictQLearning(chain_mdp(4), seed=1)
        learner.run(200)
        assert all(isinstance(k, int) for k in learner.q)

    def test_episode_counting(self):
        learner = DictQLearning(chain_mdp(3), seed=1)
        res = learner.run(1000)
        assert res.episodes > 50
        assert learner.samples == 1000

    def test_resumable(self):
        learner = DictQLearning(chain_mdp(4), seed=1)
        learner.run(100)
        learner.run(100)
        assert learner.samples == 200

    def test_converges_on_grid(self, grid8):
        learner = DictQLearning(grid8, alpha=0.5, gamma=0.9, seed=3)
        learner.run(150_000)
        enc = grid8.metadata["encoding"]
        q = np.zeros((grid8.num_states, grid8.num_actions))
        for key, row in learner.q.items():
            s = enc.encode(*key)
            for a, v in row.items():
                q[s, a] = v
        assert success_rate(grid8, q, gamma=0.9) > 0.9


class TestDictSarsa:
    def test_runs_and_learns_chain(self):
        mdp = chain_mdp(5, reward=100.0)
        learner = DictSarsa(mdp, alpha=0.5, gamma=0.5, epsilon=0.2, seed=1)
        learner.run(20_000)
        row = learner.q[3]
        assert max(row, key=row.get) == 0

    def test_episodes(self):
        learner = DictSarsa(chain_mdp(3), seed=1)
        assert learner.run(2000).episodes > 50


class TestFloatLearners:
    def test_qlearning_matches_oracle(self):
        mdp = chain_mdp(6)
        learner = FloatQLearning(mdp, alpha=0.5, gamma=0.5, seed=1)
        learner.run(40_000)
        q_star = mdp.optimal_q(0.5)
        assert np.allclose(learner.q[:-1, 0], q_star[:-1, 0], atol=0.5)

    def test_sarsa_grid_success(self, grid8):
        learner = FloatSarsa(grid8, alpha=0.5, gamma=0.9, epsilon=0.2, seed=3)
        learner.run(150_000)
        assert success_rate(grid8, learner.q, gamma=0.9) > 0.8

    def test_optimistic_init(self):
        learner = FloatQLearning(chain_mdp(4), q_init=10.0, seed=1)
        assert learner.q.max() == 10.0

    def test_gold_vs_accelerator_agreement(self, grid8):
        """The float reference and the fixed-point accelerator learn
        compatible policies (bounding the quantisation + Qmax error)."""
        from repro.core.accelerator import QLearningAccelerator

        gold = FloatQLearning(grid8, alpha=0.5, gamma=0.9, seed=3)
        gold.run(200_000)
        acc = QLearningAccelerator(grid8, alpha=0.5, gamma=0.9, seed=3)
        acc.run(200_000)
        q_star = grid8.optimal_q(0.9)
        reach = ~grid8.terminal
        gold_agree = policy_agreement(gold.q[reach], q_star[reach])
        acc_agree = policy_agreement(acc.q_values()[reach], q_star[reach])
        assert acc_agree > gold_agree - 0.2
