"""Tests for the synthetic MDP generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envs.random_mdp import chain_mdp, random_dense_mdp


class TestRandomDense:
    def test_shapes(self):
        mdp = random_dense_mdp(32, 4, seed=1)
        assert mdp.next_state.shape == (32, 4)
        assert mdp.rewards.shape == (32, 4)

    def test_deterministic_per_seed(self):
        a = random_dense_mdp(16, 4, seed=7)
        b = random_dense_mdp(16, 4, seed=7)
        assert np.array_equal(a.next_state, b.next_state)
        assert np.array_equal(a.rewards, b.rewards)

    def test_seeds_differ(self):
        a = random_dense_mdp(16, 4, seed=7)
        b = random_dense_mdp(16, 4, seed=8)
        assert not np.array_equal(a.next_state, b.next_state)

    def test_reward_scale(self):
        mdp = random_dense_mdp(64, 4, seed=1, reward_scale=10.0)
        assert mdp.rewards.min() >= -10.0
        assert mdp.rewards.max() <= 10.0

    def test_terminal_fraction(self):
        mdp = random_dense_mdp(100, 2, seed=1, terminal_fraction=0.2)
        assert mdp.terminal.sum() == 20
        assert not mdp.terminal[mdp.start_states].any()

    def test_self_loop_bias(self):
        mdp = random_dense_mdp(64, 4, seed=1, self_loop_bias=1.0)
        states = np.arange(64)
        assert np.all(mdp.next_state == states[:, None])

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            random_dense_mdp(1, 2)
        with pytest.raises(ValueError):
            random_dense_mdp(8, 2, terminal_fraction=1.0)
        with pytest.raises(ValueError):
            random_dense_mdp(8, 2, self_loop_bias=1.5)


class TestChain:
    def test_structure(self):
        mdp = chain_mdp(5)
        assert mdp.num_states == 5
        assert mdp.terminal[4]
        # action 0 advances, others stay
        assert mdp.next_state[2, 0] == 3
        assert mdp.next_state[2, 1] == 2

    def test_reward_only_at_end(self):
        mdp = chain_mdp(5, reward=42.0)
        assert mdp.rewards[3, 0] == 42.0
        assert mdp.rewards.sum() == 42.0

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            chain_mdp(1)
        with pytest.raises(ValueError):
            chain_mdp(5, num_actions=1)


@given(
    st.integers(min_value=2, max_value=64),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=40)
def test_random_mdp_always_valid(states, actions, seed):
    """Generated MDPs always satisfy DenseMdp's invariants (property)."""
    mdp = random_dense_mdp(states, actions, seed=seed)
    assert mdp.next_state.min() >= 0
    assert mdp.next_state.max() < states
    assert len(mdp.start_states) >= 1
