"""The multi-tenant session gateway (`repro.serve`).

Coverage, bottom up:

* the NDJSON wire helpers (`protocol.py`) — encoding, id echo,
  validation errors;
* the :class:`SessionManager` — lease/recycle, admission, the
  lane-recycling isolation property (more sequential sessions than
  lanes, every one bit-identical to a dedicated scalar simulator),
  checkpoint/restore, journal re-basing;
* crash recovery — a SIGKILLed shard worker mid-traffic, recovered
  bit-exactly through the session journal; hypothesis properties for
  back-to-back kills inside one checkpoint interval and for
  checkpoint-mediated sharded→vectorized failover migration;
* protocol /2 resilience surface — `seq` echoed on every response
  (the exactly-once correlation handle), degraded-bench sentinel
  gating (the chaos tests proper live in `tests/test_chaos.py`);
* the asyncio gateway end to end over real sockets, on the vectorized
  *and* sharded backends (the acceptance bit-identity claim), plus
  admission queue-with-timeout behaviour and wire-level error codes;
* the SIGTERM leak regression for the sharded backend's signal hooks;
* the serve throughput bench record round-tripping through a snapshot
  and the regression sentinel.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import QTAccelConfig
from repro.serve import (
    Gateway,
    ProtocolError,
    ServeClient,
    ServeError,
    SessionManager,
    build_serve_backend,
    run_gateway_in_thread,
)
from repro.serve.protocol import (
    E_AT_CAPACITY,
    E_BAD_REQUEST,
    E_NO_SESSION,
    MAX_BATCH,
    decode,
    encode,
    error,
    ok,
    parse_batch,
    parse_transition,
    require_int,
)
from repro.serve.smoke import replay_reference

S, A = 16, 4


def _config(**kw):
    kw.setdefault("seed", 9)
    return QTAccelConfig.qlearning(**kw)


def _backend(engine="vectorized", lanes=3, config=None, **kw):
    if engine == "sharded":
        kw.setdefault("num_workers", 2)
        kw.setdefault("mp_context", "fork")
    return build_serve_backend(
        config or _config(),
        engine=engine,
        lanes=lanes,
        num_states=S,
        num_actions=A,
        **kw,
    )


def _random_stream(rng, n, explore_frac=0.25):
    """A reproducible mixed op stream in journal form."""
    ops = []
    for _ in range(n):
        if rng.random() < explore_frac:
            ops.append(("act", rng.randrange(S)))
        else:
            ops.append(
                (
                    "learn",
                    rng.randrange(S),
                    rng.randrange(A),
                    rng.uniform(-2.0, 2.0),
                    rng.randrange(S),
                    rng.random() < 0.05,
                )
            )
    return ops


def _apply_via_manager(manager, sid, ops):
    for op in ops:
        if op[0] == "learn":
            manager.learn(sid, *op[1:])
        else:
            manager.act(sid, op[1], True)


def _ref_table(config, salt, ops):
    ref = replay_reference(config, salt, ops, num_states=S, num_actions=A)
    return [int(v) for v in ref.tables.q.data]


# ---------------------------------------------------------------------- #
# Protocol helpers
# ---------------------------------------------------------------------- #


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        msg = {"op": "learn", "s": 1, "r": -0.5, "id": "x"}
        line = encode(msg)
        assert line.endswith(b"\n") and b" " not in line.split(b'"detail"')[0][:2]
        assert decode(line) == msg

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as exc:
            decode(b"[1,2]\n")
        assert exc.value.code == E_BAD_REQUEST

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"{nope\n")

    def test_id_echo(self):
        assert ok({"a": 1}, req={"op": "ping", "id": 7})["id"] == 7
        assert error(E_NO_SESSION, "gone", req={"id": "t"})["id"] == "t"
        assert "id" not in ok({}, req={"op": "ping"})

    def test_require_int_bounds(self):
        assert require_int({"s": 3}, "s", lo=0, hi=15) == 3
        for bad in ({"s": -1}, {"s": 16}, {"s": 1.5}, {"s": "3"}, {}):
            with pytest.raises(ProtocolError) as exc:
                require_int(bad, "s", lo=0, hi=15)
            assert exc.value.code == E_BAD_REQUEST

    def test_parse_transition(self):
        req = {"s": 1, "a": 2, "r": 0.25, "ns": 3, "t": True}
        assert parse_transition(req, num_states=S, num_actions=A) == (
            1, 2, 0.25, 3, True,
        )
        with pytest.raises(ProtocolError):
            parse_transition(
                {"s": 1, "a": 9, "r": 0, "ns": 0}, num_states=S, num_actions=A
            )

    def test_parse_batch_shapes_and_cap(self):
        rows = [[0, 1, 0.5, 2], [3, 0, -1.0, 4, True]]
        parsed = parse_batch({"batch": rows}, num_states=S, num_actions=A)
        assert parsed == [(0, 1, 0.5, 2, False), (3, 0, -1.0, 4, True)]
        too_big = {"batch": [[0, 0, 0.0, 0]] * (MAX_BATCH + 1)}
        with pytest.raises(ProtocolError):
            parse_batch(too_big, num_states=S, num_actions=A)


# ---------------------------------------------------------------------- #
# SessionManager
# ---------------------------------------------------------------------- #


class TestSessionManager:
    def test_lease_recycle_and_admission(self):
        manager = SessionManager(_backend(lanes=2))
        a, b = manager.open(), manager.open()
        assert {a.lane, b.lane} == {0, 1}
        assert a.salt != b.salt and min(a.salt, b.salt) >= manager.K
        with pytest.raises(ProtocolError) as exc:
            manager.open()
        assert exc.value.code == E_AT_CAPACITY
        assert manager.sessions_rejected == 1
        manager.close(a.sid)
        c = manager.open()
        assert c.lane == a.lane and c.salt not in (a.salt, b.salt)
        with pytest.raises(ProtocolError) as exc:
            manager.learn(a.sid, 0, 0, 0.0, 0)
        assert exc.value.code == E_NO_SESSION

    def test_sequential_sessions_never_cross_contaminate(self):
        """N sessions over K < N lanes: recycling leaks no state.

        Each session's final table must be bit-identical to a dedicated
        FunctionalSimulator replaying only that session's ops — any
        cross-session leakage through a recycled lane breaks this.
        """
        config = _config(seed=21)
        manager = SessionManager(_backend(lanes=3, config=config))
        rng = random.Random(0xA11CE)
        live: list = []
        for i in range(9):
            rec = manager.open()
            ops = _random_stream(rng, 40 + 10 * (i % 3))
            _apply_via_manager(manager, rec.sid, ops)
            live.append((rec, ops))
            # Interleave lifetimes so lanes are recycled mid-run, not
            # in strict open/close lockstep.
            if len(live) == 3:
                for rec, ops in live:
                    got = manager.q_row(rec.sid)
                    assert got == _ref_table(config, rec.salt, ops), rec.sid
                    manager.close(rec.sid)
                live = []

    @pytest.mark.parametrize("engine", ["sharded"])
    def test_sequential_sessions_sharded(self, engine):
        config = _config(seed=4)
        backend = _backend(engine=engine, lanes=3, config=config)
        try:
            manager = SessionManager(backend)
            rng = random.Random(7)
            for _ in range(5):
                rec = manager.open()
                ops = _random_stream(rng, 30)
                _apply_via_manager(manager, rec.sid, ops)
                assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)
                manager.close(rec.sid)
        finally:
            backend.close()

    def test_checkpoint_restore_rebases_journal(self):
        config = _config(seed=2)
        manager = SessionManager(_backend(lanes=1, config=config))
        rec = manager.open()
        rng = random.Random(3)
        pre = _random_stream(rng, 25)
        _apply_via_manager(manager, rec.sid, pre)
        tag = manager.checkpoint(rec.sid, "mark")
        at_mark = manager.q_row(rec.sid)
        _apply_via_manager(manager, rec.sid, _random_stream(rng, 25))
        assert manager.q_row(rec.sid) != at_mark  # drifted
        assert manager.restore(rec.sid) == tag  # default = latest
        assert manager.q_row(rec.sid) == at_mark
        stats = manager.stats(rec.sid)
        assert stats["journal_depth"] == 0 and stats["tags"] == ["mark"]
        # Post-restore traffic continues the same draw stream the
        # checkpoint froze: replay pre-ops then post-ops on a reference.
        post = _random_stream(rng, 20)
        _apply_via_manager(manager, rec.sid, post)
        assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, pre + post)

    def test_journal_rebase_caps_depth(self):
        manager = SessionManager(_backend(lanes=1), checkpoint_every=8)
        rec = manager.open()
        rng = random.Random(5)
        _apply_via_manager(manager, rec.sid, _random_stream(rng, 50))
        assert manager.stats(rec.sid)["journal_depth"] < 8

    def test_q_row_slices_one_state(self):
        manager = SessionManager(_backend(lanes=1))
        rec = manager.open()
        manager.learn(rec.sid, 2, 1, 1.0, 3)
        full = manager.q_row(rec.sid)
        assert len(full) == S * A
        assert manager.q_row(rec.sid, 2) == full[2 * A : 3 * A]


# ---------------------------------------------------------------------- #
# Crash recovery (sharded)
# ---------------------------------------------------------------------- #


class TestCrashRecovery:
    def test_killed_worker_recovers_sessions_bit_exactly(self):
        config = _config(seed=17)
        backend = _backend(engine="sharded", lanes=4, config=config)
        try:
            manager = SessionManager(backend, checkpoint_every=8)
            rng = random.Random(0xDEAD)
            recs, streams = [], []
            for _ in range(3):
                rec = manager.open()
                ops = _random_stream(rng, 30)
                _apply_via_manager(manager, rec.sid, ops)
                recs.append(rec)
                streams.append(list(ops))

            backend.kill_worker(0)
            recovered = manager.maintenance()
            # Worker 0 owns lanes [0, 2): both leased, so both sessions
            # must have been restored+replayed.
            assert set(recovered) == {
                rec.sid for rec in recs if rec.lane < 2
            } and recovered
            assert manager.recoveries == len(recovered)

            # Post-crash traffic continues bit-exactly on every session.
            for rec, ops in zip(recs, streams):
                more = _random_stream(rng, 15)
                _apply_via_manager(manager, rec.sid, more)
                ops.extend(more)
                assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)
        finally:
            backend.close()

    def test_maintenance_noop_without_check_workers(self):
        manager = SessionManager(_backend(lanes=1))
        assert manager.maintenance() == []


# ---------------------------------------------------------------------- #
# Recovery properties (hypothesis)
# ---------------------------------------------------------------------- #


class TestRecoveryProperties:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        n1=st.integers(4, 24),
        n2=st.integers(1, 8),
    )
    def test_back_to_back_kills_within_one_checkpoint_interval(self, seed, n1, n2):
        """Two SIGKILLs of the same shard inside ONE journal-rebase
        interval still recover bit-exactly: both replays re-derive the
        lane from the same base, so the second crash cannot observe a
        half-rebased journal."""
        config = _config(seed=5)
        backend = _backend(engine="sharded", lanes=4, config=config)
        try:
            # checkpoint_every far above the traffic: the journal never
            # rebases, so both kills land in one checkpoint interval.
            manager = SessionManager(backend, checkpoint_every=10_000)
            rng = random.Random(seed)
            rec = manager.open()  # lane 0: worker 0's shard
            ops = _random_stream(rng, n1)
            _apply_via_manager(manager, rec.sid, ops)

            backend.kill_worker(0)
            assert rec.sid in manager.maintenance()
            mid = _random_stream(rng, n2)
            _apply_via_manager(manager, rec.sid, mid)
            ops.extend(mid)

            backend.kill_worker(0)  # the restarted worker dies again
            assert rec.sid in manager.maintenance()
            more = _random_stream(rng, 6)
            _apply_via_manager(manager, rec.sid, more)
            ops.extend(more)

            assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)
        finally:
            manager.backend.close()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), n=st.integers(1, 40))
    def test_checkpoint_migration_sharded_to_vectorized(self, seed, n):
        """Failover migrates live sessions sharded→vectorized through
        the checkpoint surface bit-exactly, and traffic continues on
        the identical draw stream."""
        config = _config(seed=6)
        backend = _backend(engine="sharded", lanes=2, config=config)
        manager = SessionManager(backend, checkpoint_every=16, failover="vectorized")
        try:
            rng = random.Random(seed)
            rec = manager.open()
            ops = _random_stream(rng, n)
            _apply_via_manager(manager, rec.sid, ops)

            manager.failover()
            assert type(manager.backend).__name__ == "VectorizedFleetBackend"
            assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)

            more = _random_stream(rng, 10)
            _apply_via_manager(manager, rec.sid, more)
            ops.extend(more)
            assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)
        finally:
            # After failover the backend is vectorized (no close()); the
            # sharded workers were already shut down by failover itself.
            getattr(manager.backend, "close", lambda: None)()


# ---------------------------------------------------------------------- #
# Gateway over real sockets
# ---------------------------------------------------------------------- #


def _shutdown(gateway, thread, loop):
    asyncio.run_coroutine_threadsafe(gateway.close(), loop).result(timeout=10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


@pytest.fixture
def served(request):
    """A live gateway on an ephemeral port; param selects the engine."""
    engine = getattr(request, "param", "vectorized")
    config = _config(seed=13)
    backend = _backend(engine=engine, lanes=2, config=config)
    manager = SessionManager(backend, checkpoint_every=16)
    gateway = Gateway(
        manager,
        admission_timeout_s=0.2,
        maintenance_interval_s=0.05 if engine == "sharded" else 1.0,
    )
    thread, loop = run_gateway_in_thread(gateway)
    try:
        yield gateway, config
    finally:
        _shutdown(gateway, thread, loop)
        if hasattr(backend, "close"):
            backend.close()


class TestGateway:
    @pytest.mark.parametrize("served", ["vectorized", "sharded"], indirect=True)
    def test_end_to_end_bit_identity(self, served):
        """A TCP session's table equals the standalone functional replay."""
        gateway, config = served
        with ServeClient(port=gateway.port) as client:
            assert client.ping()
            sess = client.open_session()
            assert (sess.num_states, sess.num_actions) == (S, A)
            rng = random.Random(31)
            ops = _random_stream(rng, 60)
            for op in ops:
                if op[0] == "learn":
                    sess.learn(*op[1:])
                else:
                    sess.act(op[1], explore=True)
            # Greedy acts are pure reads — not journalled, not replayed.
            greedy = sess.act(0, explore=False)
            assert 0 <= greedy < A
            ref = replay_reference(config, sess.salt, ops, num_states=S, num_actions=A)
            assert sess.table() == [int(v) for v in ref.tables.q.data]
            row = sess.table(3)
            assert row == [int(v) for v in ref.tables.q.data][3 * A : 4 * A]
            stats = sess.stats()
            assert stats["samples"] == sum(1 for op in ops if op[0] == "learn")
            sess.close()

    def test_learn_batch_and_checkpoint_over_wire(self, served):
        gateway, config = served
        with ServeClient(port=gateway.port) as client:
            sess = client.open_session()
            rows = [(0, 1, 0.5, 2, False), (2, 0, -1.0, 3, True), (3, 2, 1.0, 4, False)]
            sess.learn_batch(rows)
            tag = sess.checkpoint("t0")
            at_tag = sess.table()
            sess.learn(5, 1, 2.0, 6)
            assert sess.table() != at_tag
            assert sess.restore(tag) == "t0"
            assert sess.table() == at_tag
            ops = [("learn",) + r for r in rows]
            assert sess.table() == _ref_table(config, sess.salt, ops)
            sess.close()

    def test_admission_rejects_then_queues(self, served):
        gateway, _ = served
        with ServeClient(port=gateway.port) as c1, ServeClient(port=gateway.port) as c2:
            held = [c1.open_session(), c1.open_session()]  # both lanes leased
            with pytest.raises(ServeError) as exc:
                c2.open_session()
            assert exc.value.code == "at_capacity"
            info = c2.server_info()
            assert info["open_sessions"] == 2 and info["sessions_rejected"] >= 1

            # Queue-with-timeout: an open that arrives while full succeeds
            # once a lane frees up within the admission window.
            got: dict = {}

            def _waiter():
                with ServeClient(port=gateway.port) as c3:
                    c3.request({"op": "server"})  # connection is live
                    gateway.admission_timeout_s = 5.0
                    try:
                        got["sess"] = c3.open_session().sid
                    except ServeError as err:
                        got["err"] = err.code

            gateway.admission_timeout_s = 5.0
            t = threading.Thread(target=_waiter)
            t.start()
            time.sleep(0.15)
            held.pop().close()
            t.join(timeout=10)
            assert got.get("sess"), got

    def test_wire_error_codes(self, served):
        gateway, _ = served
        with socket.create_connection(("127.0.0.1", gateway.port), timeout=10) as sock:
            rfile = sock.makefile("rb")

            def roundtrip(raw: bytes) -> dict:
                sock.sendall(raw)
                return json.loads(rfile.readline())

            bad = roundtrip(b"this is not json\n")
            assert bad == {"ok": False, "error": "bad_request", "detail": bad["detail"]}
            gone = roundtrip(b'{"op":"learn","session":"s999999","s":0,"a":0,"r":0,"ns":0}\n')
            assert gone["error"] == "no_session"
            unknown = roundtrip(b'{"op":"frobnicate","id":42}\n')
            assert unknown["error"] == "bad_request" and unknown["id"] == 42
            echoed = roundtrip(b'{"op":"ping","id":"tag-1"}\n')
            assert echoed["ok"] and echoed["id"] == "tag-1"

    def test_unknown_optional_fields_tolerated(self, served):
        """`/2` peers must IGNORE unknown optional fields, not reject them.

        The `trace` span context added for distributed tracing rides on
        this guarantee: an old gateway (or one built without the obs
        layer) must serve a traced request normally.  Same for any
        future optional field — and a malformed `trace` value must
        degrade to "untraced", never to an error.
        """
        gateway, _ = served
        with socket.create_connection(("127.0.0.1", gateway.port), timeout=10) as sock:
            rfile = sock.makefile("rb")

            def roundtrip(obj: dict) -> dict:
                sock.sendall(json.dumps(obj).encode() + b"\n")
                return json.loads(rfile.readline())

            opened = roundtrip({"op": "open", "x_future_field": {"a": [1, 2]}})
            assert opened["ok"], opened
            sid = opened["session"]
            # Well-formed trace context: served, and not echoed back.
            good = roundtrip(
                {"op": "learn", "session": sid, "s": 0, "a": 0, "r": 0.5,
                 "ns": 1, "trace": {"trace_id": "t" * 16, "span_id": "s" * 16}}
            )
            assert good["ok"] and "trace" not in good
            # Malformed trace values of every JSON shape: still served.
            for garbage in ("not-a-dict", 17, [1, 2], {"trace_id": 9},
                            {"trace_id": "x" * 999, "span_id": "ok"}, None):
                resp = roundtrip(
                    {"op": "learn", "session": sid, "s": 1, "a": 1,
                     "r": 0.25, "ns": 2, "trace": garbage}
                )
                assert resp["ok"], (garbage, resp)
            # Unknown fields on a read op too.
            acted = roundtrip(
                {"op": "act", "session": sid, "s": 0, "explore": True,
                 "trace": {"trace_id": "t" * 16, "span_id": "u" * 16},
                 "baggage": {"k": "v"}}
            )
            assert acted["ok"] and 0 <= acted["action"] < A

    def test_seq_echoed_in_every_response(self, served):
        """`seq` rides back on success AND error responses, so clients
        can correlate retries; requests without one get no echo."""
        gateway, _ = served
        with socket.create_connection(("127.0.0.1", gateway.port), timeout=10) as sock:
            rfile = sock.makefile("rb")

            def roundtrip(obj: dict) -> dict:
                sock.sendall(json.dumps(obj).encode() + b"\n")
                return json.loads(rfile.readline())

            opened = roundtrip({"op": "open"})
            assert opened["ok"] and "seq" not in opened and opened["token"]
            sid = opened["session"]
            good = roundtrip(
                {"op": "learn", "session": sid, "seq": 1,
                 "s": 0, "a": 0, "r": 0.5, "ns": 1}
            )
            assert good["ok"] and good["seq"] == 1
            bad = roundtrip(
                {"op": "learn", "session": sid, "seq": 2,
                 "s": 99, "a": 0, "r": 0.5, "ns": 1}
            )
            assert not bad["ok"] and bad["seq"] == 2

    def test_disconnect_closes_owned_sessions(self, served):
        gateway, _ = served
        manager = gateway.manager
        client = ServeClient(port=gateway.port)
        client.open_session()
        assert manager.open_sessions == 1
        client.close()
        deadline = time.monotonic() + 5
        while manager.open_sessions and time.monotonic() < deadline:
            time.sleep(0.01)
        assert manager.open_sessions == 0


# ---------------------------------------------------------------------- #
# SIGTERM leak regression (satellite: signal-safe sharded cleanup)
# ---------------------------------------------------------------------- #

_SIGTERM_SCRIPT = """
import json, os, sys, time
from repro.backends.sharded import ShardedFleetBackend, install_signal_cleanup
from repro.core.config import QTAccelConfig
from repro.serve.session import serve_world

install_signal_cleanup()
backend = ShardedFleetBackend(
    serve_world(8, 4), QTAccelConfig.qlearning(seed=1),
    num_agents=2, num_workers=2, mp_context="fork",
)
print(json.dumps({
    "shm": backend._shm.name,
    "pids": [p.pid for p in backend._procs],
}), flush=True)
time.sleep(60)
"""


def test_sigterm_leaks_nothing():
    """SIGTERM reaps the workers and unlinks the /dev/shm block."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _SIGTERM_SCRIPT],
        stdout=subprocess.PIPE,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        info = json.loads(proc.stdout.readline())
        shm_path = "/dev/shm/" + info["shm"].lstrip("/")
        assert os.path.exists(shm_path)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) != 0  # died by signal, not exit(0)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            workers_dead = all(not _pid_alive(p) for p in info["pids"])
            if workers_dead and not os.path.exists(shm_path):
                break
            time.sleep(0.05)
        assert not os.path.exists(shm_path), "shared memory leaked"
        for pid in info["pids"]:
            assert not _pid_alive(pid), f"worker {pid} leaked"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Zombies are "alive" to kill(0); check the state field.
    try:
        with open(f"/proc/{pid}/stat") as fh:
            return fh.read().split(") ", 1)[1][0] != "Z"
    except (FileNotFoundError, IndexError):
        return False


# ---------------------------------------------------------------------- #
# Bench record → snapshot → sentinel
# ---------------------------------------------------------------------- #


def test_serve_bench_snapshot_passes_sentinel(tmp_path):
    from repro.perf.compare import compare_snapshots
    from repro.perf.serve import run_serve_throughput
    from repro.perf.snapshot import build_snapshot, load_snapshot, write_snapshot

    record = run_serve_throughput(
        engine="vectorized",
        lanes=4,
        concurrency=2,
        sessions=4,
        transitions_per_session=24,
        num_states=S,
        num_actions=A,
    )
    assert record["errors"] == []
    assert record["sessions_completed"] == 4
    assert record["sessions_per_sec"] > 0 and record["transitions_per_sec"] > 0
    assert record["act_latency_ms"]["p99"] >= record["act_latency_ms"]["p50"]

    snap = build_snapshot({}, source="test", serve_throughput=record)
    path = write_snapshot(snap, tmp_path / "BENCH_serve.json")
    loaded = load_snapshot(path)
    assert loaded["serve_throughput"]["engine"] == "vectorized"

    result = compare_snapshots(loaded, loaded)
    assert result.ok
    serve_findings = [f for f in result.findings if "serve" in f.case]
    assert serve_findings and all(f.verdict != "regression" for f in serve_findings)

    # A different load shape must be skipped, not gated.
    other = dict(record, concurrency=record["concurrency"] + 1)
    skew = build_snapshot({}, source="test2", serve_throughput=other)
    assert compare_snapshots(loaded, skew).ok


def test_degraded_throughput_gated_by_sentinel():
    """The chaos-mode serve record rides the snapshot's
    degraded_throughput key and regresses independently of the healthy
    numbers."""
    from repro.perf.compare import compare_snapshots
    from repro.perf.snapshot import build_snapshot

    degraded = {
        "engine": "sharded", "lanes": 8, "concurrency": 4, "sessions": 12,
        "transitions_per_session": 48, "chaos": True, "hangs": 1, "restarts": 1,
        "sessions_per_sec": 20.0, "transitions_per_sec": 960.0,
        "act_latency_ms": {"p50": 0.3, "p99": 1.0},
    }
    base = build_snapshot({}, source="base", degraded_throughput=degraded)
    same = compare_snapshots(base, base)
    assert same.ok and any(f.case == "degraded.sessions_per_sec" for f in same.findings)

    slower = dict(degraded, sessions_per_sec=10.0)
    worse = build_snapshot({}, source="new", degraded_throughput=slower)
    result = compare_snapshots(base, worse)
    assert not result.ok
    assert [f.case for f in result.regressions] == ["degraded.sessions_per_sec"]

    # A healthy (non-chaos) record never compares against a degraded one.
    healthy = {k: v for k, v in degraded.items() if k not in ("chaos", "hangs", "restarts")}
    mixed = build_snapshot({}, source="new2", degraded_throughput=healthy)
    assert compare_snapshots(base, mixed).ok
