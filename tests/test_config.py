"""Tests for QTAccelConfig."""

import pytest

from repro.core.config import QTAccelConfig
from repro.fixedpoint.format import COEF_FORMAT


class TestPresets:
    def test_qlearning_preset(self):
        cfg = QTAccelConfig.qlearning()
        assert cfg.behavior_policy == "random"
        assert cfg.update_policy == "greedy"
        assert cfg.algorithm == "qlearning"
        assert not cfg.is_on_policy

    def test_sarsa_preset(self):
        cfg = QTAccelConfig.sarsa()
        assert cfg.behavior_policy == "egreedy"
        assert cfg.update_policy == "egreedy"
        assert cfg.algorithm == "sarsa"
        assert cfg.is_on_policy

    def test_preset_kwargs_flow_through(self):
        cfg = QTAccelConfig.qlearning(alpha=0.25, gamma=0.5, seed=9)
        assert cfg.alpha == 0.25
        assert cfg.gamma == 0.5
        assert cfg.seed == 9


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("behavior_policy", "boltzmann"),
        ("update_policy", "softmax"),
        ("hazard_mode", "yolo"),
        ("qmax_mode", "magic"),
    ])
    def test_rejects_unknown_enums(self, field, value):
        with pytest.raises(ValueError):
            QTAccelConfig(**{field: value})

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            QTAccelConfig(alpha=alpha)

    @pytest.mark.parametrize("gamma", [-0.1, 1.1])
    def test_rejects_bad_gamma(self, gamma):
        with pytest.raises(ValueError):
            QTAccelConfig(gamma=gamma)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            QTAccelConfig(epsilon=2.0)

    def test_rejects_narrow_lfsr(self):
        with pytest.raises(ValueError):
            QTAccelConfig(lfsr_width=4)


class TestDerived:
    def test_coefficients_structure(self):
        cfg = QTAccelConfig(alpha=0.5, gamma=0.5)
        a, g, oma, ag = cfg.coefficients()
        one = 1 << COEF_FORMAT.frac
        assert a == one // 2
        assert g == one // 2
        assert oma == one - a
        assert ag == one // 4

    def test_with_creates_copy(self):
        cfg = QTAccelConfig.qlearning()
        other = cfg.with_(alpha=0.25)
        assert other.alpha == 0.25
        assert cfg.alpha == 0.5
        assert other.update_policy == cfg.update_policy

    def test_frozen(self):
        cfg = QTAccelConfig.qlearning()
        with pytest.raises(AttributeError):
            cfg.alpha = 0.1
