"""Tests for QTAccelConfig."""

import pytest

from repro.core.config import QTAccelConfig
from repro.fixedpoint.format import COEF_FORMAT


class TestPresets:
    def test_qlearning_preset(self):
        cfg = QTAccelConfig.qlearning()
        assert cfg.behavior_policy == "random"
        assert cfg.update_policy == "greedy"
        assert cfg.algorithm == "qlearning"
        assert not cfg.is_on_policy

    def test_sarsa_preset(self):
        cfg = QTAccelConfig.sarsa()
        assert cfg.behavior_policy == "egreedy"
        assert cfg.update_policy == "egreedy"
        assert cfg.algorithm == "sarsa"
        assert cfg.is_on_policy

    def test_preset_kwargs_flow_through(self):
        cfg = QTAccelConfig.qlearning(alpha=0.25, gamma=0.5, seed=9)
        assert cfg.alpha == 0.25
        assert cfg.gamma == 0.5
        assert cfg.seed == 9


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("behavior_policy", "boltzmann"),
        ("update_policy", "softmax"),
        ("hazard_mode", "yolo"),
        ("qmax_mode", "magic"),
    ])
    def test_rejects_unknown_enums(self, field, value):
        with pytest.raises(ValueError):
            QTAccelConfig(**{field: value})

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            QTAccelConfig(alpha=alpha)

    @pytest.mark.parametrize("gamma", [-0.1, 1.1])
    def test_rejects_bad_gamma(self, gamma):
        with pytest.raises(ValueError):
            QTAccelConfig(gamma=gamma)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            QTAccelConfig(epsilon=2.0)

    def test_rejects_narrow_lfsr(self):
        with pytest.raises(ValueError):
            QTAccelConfig(lfsr_width=4)

    @pytest.mark.parametrize("field", ["alpha", "gamma", "epsilon", "q_init"])
    def test_rejects_nonfinite_coefficients(self, field):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                QTAccelConfig(**{field: bad})

    @pytest.mark.parametrize("field", ["alpha", "gamma", "epsilon", "q_init"])
    def test_rejects_non_numeric_coefficients(self, field):
        for bad in ("0.5", None, True):
            with pytest.raises(TypeError, match="real number"):
                QTAccelConfig(**{field: bad})

    def test_alpha_error_is_actionable(self):
        with pytest.raises(ValueError, match=r"\(0, 1\].*no-op"):
            QTAccelConfig(alpha=0.0)

    def test_gamma_zero_is_legal_for_bandits(self):
        assert QTAccelConfig(gamma=0.0).gamma == 0.0

    def test_rejects_unrepresentable_q_init(self):
        with pytest.raises(ValueError, match="representable range"):
            QTAccelConfig(q_init=100000.0)

    def test_q_init_at_format_edge_accepted(self):
        cfg = QTAccelConfig()
        edge = cfg.q_format.max_value
        assert QTAccelConfig(q_init=edge).q_init == edge

    @pytest.mark.parametrize("fmt_field", ["q_format", "coef_format"])
    def test_rejects_non_fxp_formats(self, fmt_field):
        with pytest.raises(TypeError, match="FxpFormat"):
            QTAccelConfig(**{fmt_field: (16, 6)})

    def test_unsupported_lfsr_width_lists_choices(self):
        with pytest.raises(ValueError, match="supported widths"):
            QTAccelConfig(lfsr_width=999)

    def test_rejects_non_int_lfsr_width(self):
        for bad in (24.0, "24", True):
            with pytest.raises(TypeError, match="lfsr_width"):
                QTAccelConfig(lfsr_width=bad)

    def test_rejects_non_int_seed(self):
        for bad in (1.5, "1", True):
            with pytest.raises(TypeError, match="seed"):
                QTAccelConfig(seed=bad)

    def test_rejects_non_bool_ecc_tables(self):
        with pytest.raises(TypeError, match="ecc_tables"):
            QTAccelConfig(ecc_tables=1)

    def test_rejects_non_str_name(self):
        with pytest.raises(TypeError, match="name"):
            QTAccelConfig(name=5)

    def test_enum_errors_list_valid_choices(self):
        with pytest.raises(ValueError, match="random"):
            QTAccelConfig(behavior_policy="boltzmann")


class TestDerived:
    def test_coefficients_structure(self):
        cfg = QTAccelConfig(alpha=0.5, gamma=0.5)
        a, g, oma, ag = cfg.coefficients()
        one = 1 << COEF_FORMAT.frac
        assert a == one // 2
        assert g == one // 2
        assert oma == one - a
        assert ag == one // 4

    def test_with_creates_copy(self):
        cfg = QTAccelConfig.qlearning()
        other = cfg.with_(alpha=0.25)
        assert other.alpha == 0.25
        assert cfg.alpha == 0.5
        assert other.update_policy == cfg.update_policy

    def test_frozen(self):
        cfg = QTAccelConfig.qlearning()
        with pytest.raises(AttributeError):
            cfg.alpha = 0.1
