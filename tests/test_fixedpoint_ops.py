"""Unit and property tests for the vectorised datapath kernels.

The critical property: scalar (``int``) and array (numpy) paths of every
kernel are bit-identical, and ``q_update`` equals the composition of its
three multiplies and the adder — otherwise the cycle-accurate and
functional simulators could drift apart.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import ops
from repro.fixedpoint.format import COEF_FORMAT, Q_FORMAT, FxpFormat
from repro.fixedpoint.scalar import Fxp


class TestQuantizeArray:
    def test_matches_scalar(self):
        vals = [-300.0, -1.23, 0.0, 0.015625, 1.5, 511.99, 700.0]
        arr = ops.quantize_array(vals, Q_FORMAT)
        for v, r in zip(vals, arr):
            assert int(r) == Q_FORMAT.quantize(v)

    def test_roundtrip(self):
        vals = np.linspace(-500, 500, 101)
        raw = ops.quantize_array(vals, Q_FORMAT)
        back = ops.to_float_array(raw, Q_FORMAT)
        assert np.all(np.abs(back - vals) < Q_FORMAT.resolution)

    def test_nearest_mode(self):
        f = Q_FORMAT.with_(rounding="nearest")
        arr = ops.quantize_array([0.0078125], f)  # half an lsb
        assert int(arr[0]) == 1


class TestClampRaw:
    def test_scalar_saturate(self):
        assert ops.clamp_raw(10**9, Q_FORMAT) == Q_FORMAT.raw_max
        assert ops.clamp_raw(-(10**9), Q_FORMAT) == Q_FORMAT.raw_min

    def test_array_saturate(self):
        arr = np.array([10**9, 0, -(10**9)])
        out = ops.clamp_raw(arr, Q_FORMAT)
        assert list(out) == [Q_FORMAT.raw_max, 0, Q_FORMAT.raw_min]

    def test_wrap(self):
        f = FxpFormat(wordlen=8, frac=0, overflow="wrap")
        arr = ops.clamp_raw(np.array([128, 255, 256]), f)
        assert list(arr) == [-128, -1, 0]


class TestMulAdd:
    def test_fxp_mul_matches_scalar_type(self):
        a = Fxp.from_float(3.25, Q_FORMAT)
        b = Fxp.from_float(-1.5, Q_FORMAT)
        got = ops.fxp_mul(a.raw, Q_FORMAT, b.raw, Q_FORMAT, Q_FORMAT)
        assert got == (a * b).raw
        assert isinstance(got, int)

    def test_fxp_mul_array(self):
        a = ops.quantize_array([1.0, 2.0, -3.0], Q_FORMAT)
        b = ops.quantize_array([0.5, 0.5, 0.5], COEF_FORMAT)
        out = ops.fxp_mul(a, Q_FORMAT, b, COEF_FORMAT, Q_FORMAT)
        assert list(ops.to_float_array(out, Q_FORMAT)) == [0.5, 1.0, -1.5]

    def test_fxp_add_aligns_points(self):
        a = Q_FORMAT.quantize(1.5)
        b = COEF_FORMAT.quantize(0.25)
        out = ops.fxp_add(a, Q_FORMAT, b, COEF_FORMAT, Q_FORMAT)
        assert Q_FORMAT.to_float(out) == 1.75

    def test_fxp_add_saturates(self):
        a = Q_FORMAT.raw_max
        out = ops.fxp_add(a, Q_FORMAT, a, Q_FORMAT, Q_FORMAT)
        assert out == Q_FORMAT.raw_max


class TestCoefficientSet:
    def test_basic(self):
        a, g, oma, ag = ops.coefficient_set(0.5, 0.9, COEF_FORMAT)
        one = 1 << COEF_FORMAT.frac
        assert a == one // 2
        assert oma == one - a
        assert abs(COEF_FORMAT.to_float(ag) - 0.45) < COEF_FORMAT.resolution * 2

    def test_alpha_one(self):
        a, _, oma, _ = ops.coefficient_set(1.0, 0.5, COEF_FORMAT)
        assert a == 1 << COEF_FORMAT.frac
        assert oma == 0

    def test_gamma_zero_kills_bootstrap(self):
        _, g, _, ag = ops.coefficient_set(0.5, 0.0, COEF_FORMAT)
        assert g == 0
        assert ag == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ops.coefficient_set(1.5, 0.5, COEF_FORMAT)
        with pytest.raises(ValueError):
            ops.coefficient_set(0.5, -0.1, COEF_FORMAT)

    def test_rejects_format_without_one(self):
        f = FxpFormat(wordlen=16, frac=16)  # max < 1.0
        with pytest.raises(ValueError):
            ops.coefficient_set(0.5, 0.5, f)


class TestQUpdate:
    def _coefs(self, alpha=0.5, gamma=0.9):
        a, _, oma, ag = ops.coefficient_set(alpha, gamma, COEF_FORMAT)
        return dict(
            alpha=a,
            one_minus_alpha=oma,
            alpha_gamma=ag,
            coef_fmt=COEF_FORMAT,
            q_fmt=Q_FORMAT,
        )

    def test_known_value(self):
        q = Q_FORMAT.quantize(10.0)
        r = Q_FORMAT.quantize(4.0)
        qn = Q_FORMAT.quantize(20.0)
        out = ops.q_update(q, r, qn, **self._coefs())
        # 0.5*10 + 0.5*4 + 0.45*20 = 16.0
        assert Q_FORMAT.to_float(out) == pytest.approx(16.0, abs=Q_FORMAT.resolution)

    def test_alpha_one_pure_target(self):
        q = Q_FORMAT.quantize(100.0)
        r = Q_FORMAT.quantize(-5.0)
        qn = Q_FORMAT.quantize(10.0)
        out = ops.q_update(q, r, qn, **self._coefs(alpha=1.0, gamma=0.5))
        assert Q_FORMAT.to_float(out) == pytest.approx(0.0, abs=2 * Q_FORMAT.resolution)

    def test_scalar_returns_int(self):
        out = ops.q_update(0, 64, 0, **self._coefs())
        assert isinstance(out, int)

    def test_array_matches_scalar(self):
        rng = np.random.default_rng(3)
        q = rng.integers(Q_FORMAT.raw_min, Q_FORMAT.raw_max, 64)
        r = rng.integers(Q_FORMAT.raw_min, Q_FORMAT.raw_max, 64)
        qn = rng.integers(Q_FORMAT.raw_min, Q_FORMAT.raw_max, 64)
        coefs = self._coefs()
        batch = ops.q_update(q, r, qn, **coefs)
        for i in range(64):
            assert int(batch[i]) == ops.q_update(int(q[i]), int(r[i]), int(qn[i]), **coefs)

    def test_saturates_at_format_limits(self):
        big = Q_FORMAT.raw_max
        out = ops.q_update(big, big, big, **self._coefs(alpha=1.0, gamma=1.0))
        assert out <= Q_FORMAT.raw_max


raws = st.integers(min_value=Q_FORMAT.raw_min, max_value=Q_FORMAT.raw_max)
unit = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


@given(raws, raws, raws, unit, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_q_update_close_to_float(q, r, qn, alpha, gamma):
    """The fixed-point update tracks the exact float update within the
    accumulated rounding bound (property)."""
    a_raw, _, oma, ag = ops.coefficient_set(alpha, gamma, COEF_FORMAT)
    out = ops.q_update(
        q, r, qn, alpha=a_raw, one_minus_alpha=oma, alpha_gamma=ag,
        coef_fmt=COEF_FORMAT, q_fmt=Q_FORMAT,
    )
    qf = Q_FORMAT.to_float
    a_f = COEF_FORMAT.to_float(a_raw)
    ag_f = COEF_FORMAT.to_float(ag)
    exact = (1.0 - a_f) * qf(q) + a_f * qf(r) + ag_f * qf(qn)
    exact = max(Q_FORMAT.min_value, min(Q_FORMAT.max_value, exact))
    # one final rounding plus three product roundings
    assert abs(qf(out) - exact) <= 4 * Q_FORMAT.resolution


@given(raws, raws)
def test_q_update_is_convex_combination_when_gamma_zero(q, r):
    """With gamma = 0 the update interpolates between Q and R (property)."""
    a_raw, _, oma, ag = ops.coefficient_set(0.5, 0.0, COEF_FORMAT)
    out = ops.q_update(
        q, r, 0, alpha=a_raw, one_minus_alpha=oma, alpha_gamma=ag,
        coef_fmt=COEF_FORMAT, q_fmt=Q_FORMAT,
    )
    lo, hi = min(q, r), max(q, r)
    assert lo - 1 <= out <= hi + 1
