"""Tests for the cycle-accurate pipeline's timing behaviour."""

import pytest

from repro.core.config import QTAccelConfig
from repro.core.pipeline import QTAccelPipeline
from repro.envs.gridworld import GridWorld
from repro.envs.random_mdp import chain_mdp, random_dense_mdp


class TestFillAndDrain:
    def test_first_retire_after_fill(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        for _ in range(3):
            p.step()
            assert p.stats.retired == 0
        p.step()
        assert p.stats.retired == 1  # 4-stage latency

    def test_one_sample_per_cycle_after_fill(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        p.run(1000)
        assert p.stats.cycles == 1000 + 3  # paper's headline property

    def test_issue_budget_respected(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        p.run(10)
        assert p.stats.issued == 10
        assert p.stats.retired == 10
        assert p.in_flight == 0

    def test_run_resumable(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        p.run(100)
        p.run(100)
        assert p.stats.retired == 200

    def test_run_zero(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        p.run(0)
        assert p.stats.retired == 0

    def test_run_negative_rejected(self, empty16, ql_config):
        with pytest.raises(ValueError):
            QTAccelPipeline(empty16, ql_config).run(-1)


class TestCyclesPerSample:
    def test_forward_is_one(self, empty16):
        for preset in (QTAccelConfig.qlearning, QTAccelConfig.sarsa):
            p = QTAccelPipeline(empty16, preset(seed=3))
            p.run(4000)
            assert p.stats.cycles_per_sample < 1.01
            assert p.stats.stall_cycles == 0

    def test_size_independent(self):
        """The Fig. 6 premise: cycles/sample does not depend on |S|."""
        rates = []
        for side in (8, 32, 128):
            mdp = GridWorld.empty(side, 8).to_mdp()
            p = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=3))
            p.run(2000)
            rates.append(p.stats.cycles_per_sample)
        assert max(rates) - min(rates) < 1e-9

    def test_stall_mode_is_slower(self, loopy_mdp):
        fwd = QTAccelPipeline(loopy_mdp, QTAccelConfig.qlearning(seed=3))
        fwd.run(2000)
        stl = QTAccelPipeline(
            loopy_mdp, QTAccelConfig.qlearning(seed=3, hazard_mode="stall")
        )
        stl.run(2000)
        assert stl.stats.cycles > fwd.stats.cycles
        assert stl.stats.stall_cycles > 0

    def test_stale_mode_full_speed(self, loopy_mdp):
        p = QTAccelPipeline(loopy_mdp, QTAccelConfig.qlearning(seed=3, hazard_mode="stale"))
        p.run(2000)
        assert p.stats.cycles_per_sample < 1.01

    def test_chain_self_transitions_forwarded(self):
        """A corridor hammered with stay-in-place actions keeps full rate:
        the back-to-back same-pair hazard is forwarded, not stalled."""
        mdp = chain_mdp(4, num_actions=2)
        p = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=1))
        p.run(3000)
        assert p.stats.cycles_per_sample < 1.01


class TestBookkeeping:
    def test_episodes_counted(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        p.run(20_000)
        assert p.stats.episodes > 0

    def test_trace_records_every_retirement(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        trace = p.enable_trace()
        p.run(50)
        assert len(trace) == 50
        assert [t[0] for t in trace] == list(range(50))

    def test_on_retire_hook(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        seen = []
        p.on_retire = lambda smp: seen.append(smp.index)
        p.run(10)
        assert seen == list(range(10))

    def test_exploit_explore_counters(self, empty16):
        p = QTAccelPipeline(empty16, QTAccelConfig.sarsa(seed=3, epsilon=0.5))
        p.run(4000)
        total = p.stats.exploits + p.stats.explores
        assert total == 4000
        assert 0.4 < p.stats.exploits / total < 0.6

    def test_qlearning_always_exploits_update(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        p.run(100)
        assert p.stats.explores == 0

    def test_deadlock_guard(self, empty16, ql_config):
        p = QTAccelPipeline(empty16, ql_config)
        with pytest.raises(RuntimeError):
            p.run(100, max_cycles=5)


class TestModes:
    def test_exact_qmax_rejected(self, empty16):
        with pytest.raises(ValueError):
            QTAccelPipeline(empty16, QTAccelConfig.qlearning(qmax_mode="exact"))

    def test_follow_qmax_supported(self, empty16):
        p = QTAccelPipeline(empty16, QTAccelConfig.sarsa(qmax_mode="follow"))
        p.run(100)
        assert p.stats.retired == 100

    def test_stall_mode_on_random_mdp_terminates(self):
        mdp = random_dense_mdp(8, 4, seed=5, self_loop_bias=0.9)
        p = QTAccelPipeline(mdp, QTAccelConfig.qlearning(seed=5, hazard_mode="stall"))
        p.run(500)  # the deadlock guard inside run() would raise
        assert p.stats.retired == 500


class TestStage2Latency:
    """Multi-cycle stage-2 selection (the §VII-B probability-table cost),
    measured on the pipeline rather than assumed."""

    def test_initiation_interval(self, empty16, ql_config):
        import numpy as np

        for lat in (1, 2, 4):
            p = QTAccelPipeline(empty16, ql_config, stage2_latency=lat)
            p.run(2000)
            assert abs(p.stats.cycles_per_sample - lat) < 0.01

    def test_latency_invariant_trajectory(self, empty16):
        """Holding stage 2 delays samples but never changes semantics."""
        import numpy as np

        for preset in (QTAccelConfig.qlearning, QTAccelConfig.sarsa):
            cfg = preset(seed=3)
            fast = QTAccelPipeline(empty16, cfg)
            slow = QTAccelPipeline(empty16, cfg, stage2_latency=3)
            fast.run(1500)
            slow.run(1500)
            assert np.array_equal(fast.tables.q.data, slow.tables.q.data)

    def test_invalid_latency(self, empty16, ql_config):
        with pytest.raises(ValueError):
            QTAccelPipeline(empty16, ql_config, stage2_latency=0)
