"""Tests for the device models, including the paper-figure calibrations."""

import pytest

from repro.core.config import QTAccelConfig
from repro.device import (
    XC6VLX240T,
    XC7VX690T,
    XCVU13P,
    clock_mhz,
    estimate_resources,
    estimate_shared,
    max_supported_states,
    power_mw,
    throughput,
)


class TestParts:
    def test_vu13p_totals(self):
        assert XCVU13P.bram36 == 2688
        assert XCVU13P.uram == 1280
        assert XCVU13P.dsp == 12288
        # the paper's "360 Mb of on-chip UltraRAM"
        assert XCVU13P.uram_bits == 360 * 1024 * 1024

    def test_ordering(self):
        assert XC6VLX240T.bram36 < XC7VX690T.bram36 < XCVU13P.bram36


class TestResourceEstimates:
    def test_dsp_constant_in_size(self):
        cfg = QTAccelConfig.qlearning()
        for s in (64, 4096, 262144):
            assert estimate_resources(s, 8, cfg).dsp == 4

    def test_fig4_peak_calibration(self):
        """|S| = 262144, 8 actions: paper reports 78.12 % BRAM."""
        rep = estimate_resources(262144, 8, QTAccelConfig.qlearning())
        assert rep.bram_blocks == 2176
        assert 70 < rep.bram_pct < 85
        assert abs(rep.bram_bits_pct - 72.0) < 1.0

    def test_fig4_linear_growth(self):
        cfg = QTAccelConfig.qlearning()
        prev = estimate_resources(1024, 8, cfg).bram_blocks
        for s in (4096, 16384, 65536, 262144):
            cur = estimate_resources(s, 8, cfg).bram_blocks
            assert 3.5 < cur / prev < 4.5  # ~4x per size step
            prev = cur

    def test_logic_below_paper_bound(self):
        """Paper: logic/registers < 0.1 % at 2M pairs."""
        rep = estimate_resources(262144, 8, QTAccelConfig.qlearning())
        assert rep.ff_pct < 0.1
        assert rep.lut_pct < 0.1

    def test_sarsa_more_ffs(self):
        ql = estimate_resources(4096, 8, QTAccelConfig.qlearning())
        sa = estimate_resources(4096, 8, QTAccelConfig.sarsa())
        assert sa.ff > ql.ff
        assert sa.dsp == ql.dsp

    def test_fits_flag(self):
        cfg = QTAccelConfig.qlearning()
        assert estimate_resources(262144, 8, cfg).fits
        assert not estimate_resources(1 << 21, 8, cfg).fits

    def test_uram_spill_ten_million_pairs(self):
        """§VI-C2: ~10M pairs via the 360 Mb of URAM."""
        cfg = QTAccelConfig.qlearning()
        rep = estimate_resources(1 << 20, 10, cfg, spill_to_uram=True)
        assert rep.fits
        assert rep.uram_pct == pytest.approx(100.0, abs=1.0)

    def test_shared_mode_doubles_logic_not_tables(self):
        cfg = QTAccelConfig.qlearning()
        one = estimate_resources(4096, 8, cfg)
        two = estimate_shared(4096, 8, cfg)
        assert two.dsp == 2 * one.dsp
        assert two.ff == 2 * one.ff
        assert two.bram_blocks == one.bram_blocks

    def test_pipelines_multiplier(self):
        cfg = QTAccelConfig.qlearning()
        one = estimate_resources(1024, 4, cfg)
        four = estimate_resources(1024, 4, cfg, pipelines=4)
        assert four.bram_blocks == 4 * one.bram_blocks
        assert four.dsp == 16


class TestMaxStates:
    def test_sota_bounds(self):
        cfg = QTAccelConfig.qlearning()
        assert max_supported_states(4, cfg, part=XC6VLX240T) == 65536
        assert max_supported_states(4, cfg, part=XC7VX690T) == 262144

    def test_uram_extends(self):
        cfg = QTAccelConfig.qlearning()
        bram_only = max_supported_states(8, cfg, part=XCVU13P)
        with_uram = max_supported_states(8, cfg, part=XCVU13P, spill_to_uram=True)
        assert with_uram > bram_only


class TestTiming:
    def test_fig6_calibration_points(self):
        """The clock model reproduces the Fig. 6 series within 1 MS/s."""
        cfg = QTAccelConfig.qlearning()
        paper = {64: 189.0, 1024: 187.0, 4096: 186.0, 65536: 175.0, 262144: 156.0}
        for s, expect in paper.items():
            rep = estimate_resources(s, 8, cfg)
            est = throughput(rep)
            assert est.msps == pytest.approx(expect, abs=1.2), s

    def test_clock_monotone_in_utilization(self):
        fs = [clock_mhz(u) for u in (0.0, 0.2, 0.5, 0.8, 1.0)]
        assert fs == sorted(fs, reverse=True)

    def test_clock_floor(self):
        assert clock_mhz(1.0) >= 40.0

    def test_negative_util_rejected(self):
        with pytest.raises(ValueError):
            clock_mhz(-0.1)

    def test_throughput_scales_with_pipelines(self):
        rep = estimate_resources(1024, 4, QTAccelConfig.qlearning())
        one = throughput(rep, pipelines=1)
        two = throughput(rep, pipelines=2)
        assert two.samples_per_sec == pytest.approx(2 * one.samples_per_sec)

    def test_cycles_per_sample_divides(self):
        rep = estimate_resources(1024, 4, QTAccelConfig.qlearning())
        fast = throughput(rep, cycles_per_sample=1.0)
        slow = throughput(rep, cycles_per_sample=4.0)
        assert fast.msps == pytest.approx(4 * slow.msps)

    def test_bad_cps_rejected(self):
        rep = estimate_resources(1024, 4, QTAccelConfig.qlearning())
        with pytest.raises(ValueError):
            throughput(rep, cycles_per_sample=0.0)


class TestPower:
    def test_monotone_in_size(self):
        cfg = QTAccelConfig.qlearning()
        powers = [power_mw(estimate_resources(s, 8, cfg)) for s in (64, 4096, 262144)]
        assert powers == sorted(powers)

    def test_sarsa_draws_more(self):
        ql = power_mw(estimate_resources(4096, 8, QTAccelConfig.qlearning()))
        sa = power_mw(estimate_resources(4096, 8, QTAccelConfig.sarsa()))
        assert sa > ql

    def test_magnitude(self):
        """Tens to low hundreds of mW, the Fig. 3/5 axis scale."""
        cfg = QTAccelConfig.qlearning()
        assert 20 < power_mw(estimate_resources(64, 8, cfg)) < 100
        assert 100 < power_mw(estimate_resources(262144, 8, cfg)) < 400


class TestReportFormat:
    def test_synthesis_style_report(self):
        cfg = QTAccelConfig.qlearning()
        text = estimate_resources(262144, 8, cfg).format()
        lines = text.splitlines()
        assert "utilisation" in lines[0]
        assert "DSP48" in text and "BRAM36" in text
        assert "fits" in lines[-2]
        # box edges aligned (title line sits above the box)
        assert len({len(line) for line in lines[1:]}) == 1

    def test_report_flags_overflow(self):
        cfg = QTAccelConfig.qlearning()
        text = estimate_resources(1 << 21, 8, cfg).format()
        assert "DOES NOT FIT" in text


class TestProbTableResources:
    def test_third_table_adds_blocks(self):
        cfg = QTAccelConfig.sarsa()
        base = estimate_resources(4096, 8, cfg)
        with_p = estimate_resources(4096, 8, cfg, prob_table=True)
        assert with_p.bram_blocks > base.bram_blocks
        # roughly the Q table's own footprint again (same geometry)
        from repro.rtl.memory import BRAM36

        assert with_p.bram_blocks - base.bram_blocks == BRAM36.blocks_for(4096 * 8, 16)

    def test_bits_grow_too(self):
        cfg = QTAccelConfig.sarsa()
        base = estimate_resources(4096, 8, cfg)
        with_p = estimate_resources(4096, 8, cfg, prob_table=True)
        assert with_p.bram_bits - base.bram_bits == 4096 * 8 * 16


class TestPowerClockParam:
    def test_explicit_clock_scales_dynamic(self):
        cfg = QTAccelConfig.qlearning()
        rep = estimate_resources(4096, 8, cfg)
        slow = power_mw(rep, clock=94.5)
        fast = power_mw(rep, clock=189.0)
        assert fast > slow
        # static floor shared
        assert slow > 30.0
