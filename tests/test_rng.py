"""Tests for the LFSR-derived random generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.lfsr import Lfsr
from repro.rtl.rng import CltNormal, UniformSource


class TestUniformSource:
    def test_below_power_of_two_uses_low_bits(self):
        src = UniformSource(Lfsr(16, seed=3))
        peek = Lfsr(16, seed=3)
        for _ in range(50):
            for _ in range(src.decimation):
                word = peek.step()
            assert src.below(8) == word & 7

    def test_draws_are_decimated(self):
        """Consecutive draws share no bits (the exploration-correlation
        fix): the register advances DECIMATION steps per draw."""
        src = UniformSource(Lfsr(16, seed=3))
        peek = Lfsr(16, seed=3)
        src.bits()
        for _ in range(src.decimation):
            peek.step()
        assert src.lfsr.state == peek.state

    def test_action_pairs_unconstrained(self):
        """With decimation every (a_t, a_{t+1}) pair occurs - the
        single-step artifact forbade half of them."""
        src = UniformSource(Lfsr(20, seed=9))
        prev = src.below(4)
        pairs = set()
        for _ in range(3000):
            cur = src.below(4)
            pairs.add((prev, cur))
            prev = cur
        assert len(pairs) == 16

    def test_below_range(self):
        src = UniformSource(Lfsr(16, seed=9))
        draws = [src.below(5) for _ in range(500)]
        assert set(draws) == {0, 1, 2, 3, 4}

    def test_below_rejects_nonpositive(self):
        src = UniformSource(Lfsr(16))
        with pytest.raises(ValueError):
            src.below(0)

    def test_unit_float_in_range(self):
        src = UniformSource(Lfsr(20, seed=4))
        for _ in range(200):
            assert 0.0 <= src.unit_float() < 1.0

    def test_uniformity_rough(self):
        """Over a full 12-bit period the draws are near uniform."""
        src = UniformSource(Lfsr(12, seed=1))
        counts = np.zeros(4, dtype=int)
        for _ in range(src.lfsr.period):
            counts[src.below(4)] += 1
        assert counts.min() > 0.9 * counts.mean()

    def test_threshold_probability(self):
        src = UniformSource(Lfsr(20, seed=5))
        hits = sum(src.threshold(0.25) for _ in range(20_000))
        assert 0.22 < hits / 20_000 < 0.28

    def test_threshold_extremes(self):
        src = UniformSource(Lfsr(16, seed=6))
        assert not any(src.threshold(0.0) for _ in range(100))
        # p = 1.0: only the (never-occurring) all-ones+1 misses
        assert all(src.threshold(1.0) for _ in range(100))

    def test_threshold_rejects_bad_p(self):
        src = UniformSource(Lfsr(16))
        with pytest.raises(ValueError):
            src.threshold(1.5)

    def test_below_batch_matches_scalar(self):
        a = UniformSource(Lfsr(16, seed=8))
        b = UniformSource(Lfsr(16, seed=8))
        batch = a.below_batch(8, 200)
        singles = [b.below(8) for _ in range(200)]
        assert list(batch) == singles


class TestCltNormal:
    def test_moments(self):
        cn = CltNormal(Lfsr(24, seed=2), k=12, mean=3.0, std=2.0)
        xs = cn.sample_batch(40_000)
        assert abs(float(xs.mean()) - 3.0) < 0.1
        assert abs(float(xs.std()) - 2.0) < 0.15

    def test_scalar_matches_batch(self):
        a = CltNormal(Lfsr(24, seed=7), k=12)
        b = CltNormal(Lfsr(24, seed=7), k=12)
        singles = np.array([a.sample() for _ in range(50)])
        batch = b.sample_batch(50)
        assert np.allclose(singles, batch)

    def test_k_one_is_shifted_uniform(self):
        cn = CltNormal(Lfsr(24, seed=3), k=1)
        xs = cn.sample_batch(10_000)
        # uniform scaled to unit variance: bounded support
        assert xs.min() >= -2.0 and xs.max() <= 2.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CltNormal(Lfsr(16), k=0)
        with pytest.raises(ValueError):
            CltNormal(Lfsr(16), std=-1.0)

    def test_tail_shape(self):
        """About 5 percent of mass beyond 2 sigma (coarse normality)."""
        cn = CltNormal(Lfsr(24, seed=11), k=12)
        xs = cn.sample_batch(40_000)
        frac = float(np.mean(np.abs(xs) > 2.0))
        assert 0.02 < frac < 0.08


@given(st.integers(min_value=1, max_value=(1 << 20) - 1), st.integers(min_value=2, max_value=64))
@settings(max_examples=40)
def test_below_always_in_range(seed, m):
    src = UniformSource(Lfsr(20, seed=seed))
    for _ in range(30):
        assert 0 <= src.below(m) < m
