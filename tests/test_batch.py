"""Tests for the vectorised batch independent-agent simulator.

The headline contract: lane ``k`` is bit-identical to a scalar
FunctionalSimulator seeded with the same salt.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import BatchIndependentSimulator
from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.metrics import convergence_report
from repro.core.policies import PolicyDraws
from repro.envs.gridworld import GridWorld
from repro.envs.multi_agent import partition_grid
from repro.envs.random_mdp import random_dense_mdp


def assert_lane_parity(mdp_or_mdps, cfg, *, num_agents=None, n=800):
    batch = BatchIndependentSimulator(mdp_or_mdps, cfg, num_agents=num_agents)
    batch.run(n)
    mdps = batch.mdps
    total_exploits = 0
    total_episodes = 0
    for k, mdp in enumerate(mdps):
        f = FunctionalSimulator(mdp, cfg, draws=PolicyDraws.from_config(cfg, salt=k))
        f.run(n)
        assert np.array_equal(batch.q[k], f.tables.q.data), f"agent {k} Q differs"
        assert np.array_equal(batch.qmax[k], f.tables.qmax.data)
        assert np.array_equal(batch.qmax_action[k], f.tables.qmax_action.data)
        total_exploits += f.stats.exploits
        total_episodes += f.stats.episodes
    assert batch.stats.episodes == total_episodes
    assert batch.stats.exploits == total_exploits
    return batch


GRID = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
LOOPY = random_dense_mdp(16, 4, seed=9, self_loop_bias=0.5)


class TestLaneParity:
    def test_qlearning_grid(self):
        assert_lane_parity(GRID, QTAccelConfig.qlearning(seed=5), num_agents=5)

    def test_sarsa_grid(self):
        assert_lane_parity(GRID, QTAccelConfig.sarsa(seed=5), num_agents=5)

    def test_sarsa_follow_loopy(self):
        assert_lane_parity(
            LOOPY, QTAccelConfig.sarsa(seed=5, qmax_mode="follow"), num_agents=4
        )

    def test_exact_qmax(self):
        assert_lane_parity(
            LOOPY, QTAccelConfig.qlearning(seed=5, qmax_mode="exact"), num_agents=3
        )

    def test_heterogeneous_tiles(self):
        tiles = partition_grid(16, 4)
        assert_lane_parity(tiles, QTAccelConfig.qlearning(seed=5))

    def test_eight_actions(self):
        mdp = GridWorld.random(8, 8, obstacle_density=0.1, seed=3).to_mdp()
        assert_lane_parity(mdp, QTAccelConfig.sarsa(seed=2), num_agents=3)


class TestValidation:
    def test_shared_world_needs_agent_count(self):
        with pytest.raises(ValueError):
            BatchIndependentSimulator(GRID, QTAccelConfig.qlearning())

    def test_contradictory_agent_count(self):
        tiles = partition_grid(16, 4)
        with pytest.raises(ValueError):
            BatchIndependentSimulator(tiles, QTAccelConfig.qlearning(), num_agents=3)

    def test_shape_mismatch_rejected(self):
        a = GridWorld.empty(8, 4).to_mdp()
        b = GridWorld.empty(16, 4).to_mdp()
        with pytest.raises(ValueError):
            BatchIndependentSimulator([a, b], QTAccelConfig.qlearning())

    def test_salt_count_mismatch(self):
        with pytest.raises(ValueError):
            BatchIndependentSimulator(
                GRID, QTAccelConfig.qlearning(), num_agents=2, salts=[1, 2, 3]
            )

    def test_negative_samples(self):
        sim = BatchIndependentSimulator(GRID, QTAccelConfig.qlearning(), num_agents=2)
        with pytest.raises(ValueError):
            sim.run(-1)


class TestBehaviour:
    def test_agents_decorrelated(self):
        sim = BatchIndependentSimulator(GRID, QTAccelConfig.qlearning(seed=3), num_agents=4)
        sim.run(2000)
        assert not np.array_equal(sim.q[0], sim.q[1])

    def test_fleet_learns(self):
        mdp = GridWorld.empty(8, 4).to_mdp()
        sim = BatchIndependentSimulator(mdp, QTAccelConfig.qlearning(seed=3), num_agents=8)
        sim.run(40_000)
        for k in range(8):
            rep = convergence_report(mdp, sim.q_float(k), gamma=0.9, samples=40_000)
            assert rep.success > 0.9

    def test_custom_salts(self):
        a = BatchIndependentSimulator(
            GRID, QTAccelConfig.qlearning(seed=3), num_agents=2, salts=[10, 11]
        )
        a.run(500)
        f = FunctionalSimulator(
            GRID,
            QTAccelConfig.qlearning(seed=3),
            draws=PolicyDraws.from_config(QTAccelConfig.qlearning(seed=3), salt=10),
        )
        f.run(500)
        assert np.array_equal(a.q[0], f.tables.q.data)

    def test_q_float_all_shape(self):
        sim = BatchIndependentSimulator(GRID, QTAccelConfig.qlearning(), num_agents=3)
        sim.run(10)
        assert sim.q_float_all().shape == (3, GRID.num_states, GRID.num_actions)

    def test_resumable(self):
        cfg = QTAccelConfig.qlearning(seed=4)
        split = BatchIndependentSimulator(GRID, cfg, num_agents=2)
        split.run(300)
        split.run(300)
        whole = BatchIndependentSimulator(GRID, cfg, num_agents=2)
        whole.run(600)
        assert np.array_equal(split.q, whole.q)


@given(
    seed=st.integers(min_value=0, max_value=1000),
    algorithm=st.sampled_from(["qlearning", "sarsa"]),
    agents=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=12, deadline=None)
def test_lane_parity_property(seed, algorithm, agents):
    preset = QTAccelConfig.qlearning if algorithm == "qlearning" else QTAccelConfig.sarsa
    assert_lane_parity(LOOPY, preset(seed=seed), num_agents=agents, n=300)
