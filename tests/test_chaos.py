"""The chaos layer and the graceful-degradation machinery (`repro.chaos`).

Coverage, fault by fault:

* the seeded fault orchestrator — deterministic schedules, every core
  fault kind present, events inside the campaign window;
* the byte-level :class:`ChaosProxy` against a live gateway — mid-frame
  request cuts, garbage responses, connection severing and stalls, each
  survived by the client's reconnect+retry with **exactly-once**
  semantics (the final table equals the single-application reference);
* deadline propagation — an expired `deadline_ms` budget rolls a
  `learn` batch back all-or-nothing, lane and journal untouched;
* the `seq` exactly-once cache at the wire level — duplicate requests
  replay the cached response, stale ones are refused;
* hung-worker recovery — a SIGSTOP'd shard worker is detected by the
  heartbeat watchdog, SIGKILLed, restarted and journal-replayed
  bit-exactly; `close()` stays bounded with a worker still stopped;
* graceful degradation — `retry_after` hints on `at_capacity`,
  the `sessions_shed` counter, and the per-connection circuit breaker
  (`throttled`, then recovery after the cooldown);
* the journal-replay audit scrub detecting and repairing silent lane
  corruption above the ECC layer;
* sharded→vectorized backend failover, bit-exact through the
  checkpoint surface;
* one full seeded campaign (`run_chaos_campaign`) holding every tenant
  to bit-exact-or-clean-typed-error.
"""

from __future__ import annotations

import json
import random
import socket
import time

import pytest

from repro.chaos import ChaosProxy, FaultEvent, default_schedule, run_chaos_campaign
from repro.chaos.orchestrator import CORE_KINDS
from repro.core.config import QTAccelConfig
from repro.serve import (
    Gateway,
    ProtocolError,
    ServeClient,
    ServeError,
    SessionManager,
    build_serve_backend,
    run_gateway_in_thread,
)
from repro.serve.smoke import replay_reference

S, A = 16, 4


def _config(**kw):
    kw.setdefault("seed", 23)
    return QTAccelConfig.qlearning(**kw)


def _backend(engine="vectorized", lanes=3, config=None, **kw):
    if engine == "sharded":
        kw.setdefault("num_workers", 2)
        kw.setdefault("mp_context", "fork")
        kw.setdefault("ping_timeout_s", 0.4)
        kw.setdefault("hang_timeout_s", 0.8)
        kw.setdefault("stop_timeout_s", 2.0)
    return build_serve_backend(
        config or _config(),
        engine=engine,
        lanes=lanes,
        num_states=S,
        num_actions=A,
        **kw,
    )


def _ref_table(config, salt, ops):
    ref = replay_reference(config, salt, ops, num_states=S, num_actions=A)
    return [int(v) for v in ref.tables.q.data]


def _stream(rng, n):
    ops = []
    for _ in range(n):
        if rng.random() < 0.25:
            ops.append(("act", rng.randrange(S)))
        else:
            ops.append(
                ("learn", rng.randrange(S), rng.randrange(A),
                 rng.uniform(-2.0, 2.0), rng.randrange(S), rng.random() < 0.05)
            )
    return ops


def _apply(manager, sid, ops):
    for op in ops:
        if op[0] == "learn":
            manager.learn(sid, *op[1:])
        else:
            manager.act(sid, op[1], True)


# ---------------------------------------------------------------------- #
# Orchestrator: seeded fault schedules
# ---------------------------------------------------------------------- #


class TestSchedule:
    def test_deterministic_and_sorted(self):
        a = default_schedule(99, 6.0, extras=3)
        b = default_schedule(99, 6.0, extras=3)
        assert a == b
        assert all(x.at <= y.at for x, y in zip(a, a[1:]))
        assert default_schedule(100, 6.0, extras=3) != a

    def test_core_kinds_always_present_inside_window(self):
        for seed in (1, 7, 20260808):
            sched = default_schedule(seed, 8.0, extras=2)
            kinds = [ev.kind for ev in sched]
            for kind in CORE_KINDS:
                assert kind in kinds, (seed, kind)
            assert len(sched) == len(CORE_KINDS) + 2
            assert all(0.0 < ev.at < 8.0 for ev in sched)

    def test_event_is_frozen(self):
        ev = FaultEvent(at=1.0, kind="sever")
        with pytest.raises(AttributeError):
            ev.at = 2.0


# ---------------------------------------------------------------------- #
# ChaosProxy between a resilient client and a live gateway
# ---------------------------------------------------------------------- #


import asyncio
import threading


def _shutdown(gateway, thread, loop):
    asyncio.run_coroutine_threadsafe(gateway.close(), loop).result(timeout=10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


@pytest.fixture
def served():
    """A vectorized gateway tuned for fast chaos tests."""
    config = _config()
    backend = _backend(lanes=2, config=config)
    manager = SessionManager(backend, checkpoint_every=16, session_linger_s=5.0)
    gateway = Gateway(
        manager,
        admission_timeout_s=0.2,
        maintenance_interval_s=0.05,
        breaker_threshold=3,
        breaker_cooldown_s=0.6,
    )
    thread, loop = run_gateway_in_thread(gateway)
    try:
        yield gateway, config
    finally:
        _shutdown(gateway, thread, loop)


@pytest.fixture
def proxied(served):
    gateway, config = served
    with ChaosProxy(gateway.port) as proxy:
        yield proxy, gateway, config


class TestProxyFaults:
    def test_mid_frame_cut_is_exactly_once(self, proxied):
        """A request cut mid-JSON is retried on a fresh connection and
        applied exactly once (the reference journal has it once)."""
        proxy, gateway, config = proxied
        with ServeClient(port=proxy.port, timeout=5.0, max_attempts=4) as client:
            sess = client.open_session()
            sess.learn(0, 1, 0.5, 2)
            proxy.drop_next_request_mid_frame()
            sess.learn(3, 2, -1.0, 4)
            assert client.retries >= 1 and client.reconnects >= 1
            ops = [("learn", 0, 1, 0.5, 2, False), ("learn", 3, 2, -1.0, 4, False)]
            assert sess.table() == _ref_table(config, sess.salt, ops)
            assert proxy.stats()["frames_dropped"] == 1
            sess.close()

    def test_garbage_response_reconnect_replays_cached_reply(self, proxied):
        """Garbage where a response should be desynchronises the stream;
        the retry gets the exactly-once cached reply, not a re-apply."""
        proxy, gateway, config = proxied
        with ServeClient(port=proxy.port, timeout=5.0, max_attempts=4) as client:
            sess = client.open_session()
            proxy.corrupt_next_response()
            sess.learn(1, 0, 1.0, 2)
            assert client.reconnects >= 1
            ops = [("learn", 1, 0, 1.0, 2, False)]
            assert sess.table() == _ref_table(config, sess.salt, ops)
            assert sess.stats()["samples"] == 1  # applied once, not twice
            assert proxy.stats()["garbage_injected"] == 1
            sess.close()

    def test_sever_all_then_token_adoption(self, proxied):
        proxy, gateway, config = proxied
        with ServeClient(port=proxy.port, timeout=5.0, max_attempts=4) as client:
            sess = client.open_session()
            sess.learn(2, 1, 0.25, 3)
            assert proxy.sever_all() >= 1
            # The next op rides a fresh connection and adopts the
            # orphaned session by token.
            sess.learn(4, 0, -0.5, 5)
            ops = [("learn", 2, 1, 0.25, 3, False), ("learn", 4, 0, -0.5, 5, False)]
            assert sess.table() == _ref_table(config, sess.salt, ops)
            sess.close()

    def test_stall_delays_but_completes(self, proxied):
        proxy, gateway, config = proxied
        with ServeClient(port=proxy.port, timeout=10.0, max_attempts=2) as client:
            sess = client.open_session()
            proxy.stall(0.4)
            t0 = time.monotonic()
            sess.learn(0, 0, 1.0, 1)
            assert time.monotonic() - t0 >= 0.25
            assert sess.table() == _ref_table(
                config, sess.salt, [("learn", 0, 0, 1.0, 1, False)]
            )
            sess.close()


# ---------------------------------------------------------------------- #
# Deadline propagation
# ---------------------------------------------------------------------- #


class TestDeadlines:
    def test_expired_batch_rolls_back_all_or_nothing(self):
        config = _config()
        manager = SessionManager(_backend(lanes=1, config=config))
        rec = manager.open()
        pre = [("learn", 0, 1, 0.5, 2, False)]
        _apply(manager, rec.sid, pre)
        before = manager.q_row(rec.sid)
        rows = [(s % S, s % A, 0.5, (s + 1) % S, False) for s in range(40)]
        with pytest.raises(ProtocolError) as exc:
            manager.learn_batch(rec.sid, rows, deadline=time.monotonic() - 1.0)
        assert exc.value.code == "deadline_exceeded"
        # Nothing applied: lane, journal, counters all unwound.
        assert manager.q_row(rec.sid) == before
        assert manager.stats(rec.sid)["samples"] == 1
        assert manager.deadline_aborts == 1
        assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, pre)

    def test_deadline_ms_over_the_wire(self, served):
        gateway, config = served
        with ServeClient(port=gateway.port) as client:
            sess = client.open_session()
            with pytest.raises(ServeError) as exc:
                sess.learn_batch(
                    [(0, 0, 0.5, 1, False)] * 8, deadline_ms=1e-6
                )
            assert exc.value.code == "deadline_exceeded"
            assert sess.table() == _ref_table(config, sess.salt, [])
            # A sane budget goes straight through.
            sess.learn(0, 1, 1.0, 2, deadline_ms=30_000)
            sess.close()

    def test_non_positive_budget_is_refused(self, served):
        gateway, _ = served
        with ServeClient(port=gateway.port) as client:
            with pytest.raises(ServeError) as exc:
                client.request({"op": "ping", "deadline_ms": -5})
            assert exc.value.code == "deadline_exceeded"


# ---------------------------------------------------------------------- #
# seq: exactly-once at the wire level
# ---------------------------------------------------------------------- #


class TestSeqExactlyOnce:
    def test_duplicate_seq_replays_cached_reply(self, served):
        gateway, _ = served
        with socket.create_connection(("127.0.0.1", gateway.port), timeout=10) as sock:
            rfile = sock.makefile("rb")

            def rt(obj: dict) -> dict:
                sock.sendall(json.dumps(obj).encode() + b"\n")
                return json.loads(rfile.readline())

            opened = rt({"op": "open"})
            sid = opened["session"]
            req = {"op": "learn", "session": sid, "seq": 1,
                   "s": 0, "a": 1, "r": 0.5, "ns": 2}
            first = rt(req)
            dup = rt(req)  # a retry after a lost response
            assert first["ok"] and dup == first and dup["seq"] == 1
            assert rt({"op": "stats", "session": sid})["samples"] == 1

            second = rt(dict(req, seq=2, s=3))
            assert second["ok"] and second["seq"] == 2
            stale = rt(dict(req, seq=1))
            assert not stale["ok"] and stale["error"] == "bad_request"
            assert rt({"op": "stats", "session": sid})["samples"] == 2

    def test_seq_must_be_a_positive_int(self, served):
        gateway, _ = served
        with ServeClient(port=gateway.port) as client:
            sess = client.open_session()
            # Three probes only: the fixture's breaker trips at 3
            # consecutive client faults (tested separately below).
            for bad in (0, -1, "1"):
                with pytest.raises(ServeError) as exc:
                    client.request(
                        {"op": "learn", "session": sess.sid, "token": sess.token,
                         "seq": bad, "s": 0, "a": 0, "r": 0.0, "ns": 0}
                    )
                assert exc.value.code == "bad_request"


# ---------------------------------------------------------------------- #
# Hung-worker detection and bounded teardown (sharded)
# ---------------------------------------------------------------------- #


class TestHungWorker:
    def test_sigstop_worker_detected_killed_and_replayed(self):
        config = _config(seed=29)
        backend = _backend(engine="sharded", lanes=4, config=config)
        try:
            manager = SessionManager(backend, checkpoint_every=8)
            rng = random.Random(0x57A11)
            recs, streams = [], []
            for _ in range(3):
                rec = manager.open()
                ops = _stream(rng, 25)
                _apply(manager, rec.sid, ops)
                recs.append(rec)
                streams.append(list(ops))

            backend.hang_worker(0)  # SIGSTOP: alive but frozen
            recovered = manager.maintenance()
            assert backend.hangs >= 1  # detected as hung, not dead
            assert backend.restarts >= 1
            # Worker 0 owns lanes [0, 2): every leased one replayed.
            assert set(recovered) == {r.sid for r in recs if r.lane < 2}

            for rec, ops in zip(recs, streams):
                more = _stream(rng, 10)
                _apply(manager, rec.sid, more)
                ops.extend(more)
                assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)
        finally:
            manager.backend.close()

    def test_close_is_bounded_with_a_stopped_worker(self):
        backend = _backend(engine="sharded", lanes=4, stop_timeout_s=1.0)
        backend.hang_worker(1)
        t0 = time.monotonic()
        backend.close()
        # Bounded: stop_timeout per phase, not a forever-join.
        assert time.monotonic() - t0 < 15.0
        assert all(p is None or not p.is_alive() for p in backend._procs)

    def test_hang_resume_is_clean(self):
        """A worker resumed before the watchdog fires keeps working."""
        backend = _backend(engine="sharded", lanes=4, hang_timeout_s=30.0,
                           ping_timeout_s=30.0)
        try:
            backend.hang_worker(0)
            backend.resume_worker(0)
            assert backend.check_workers(timeout=5.0) == []
            assert backend.hangs == 0
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Graceful degradation: shedding, retry_after, the breaker
# ---------------------------------------------------------------------- #


class TestDegradation:
    def test_at_capacity_carries_retry_after(self):
        manager = SessionManager(_backend(lanes=1))
        manager.open()
        with pytest.raises(ProtocolError) as exc:
            manager.open()
        assert exc.value.code == "at_capacity"
        assert exc.value.retry_after and exc.value.retry_after > 0

    def test_retry_after_hint_tracks_session_lifetimes(self):
        manager = SessionManager(_backend(lanes=2))
        assert manager.retry_after_hint() == 0.25  # cold fallback
        rec = manager.open()
        manager.close(rec.sid)
        hint = manager.retry_after_hint(pending=3)
        assert 0.05 <= hint <= 60.0

    def test_note_shed_counts(self):
        manager = SessionManager(_backend(lanes=1))
        manager.note_shed()
        assert manager.sessions_shed == 1 and manager.sessions_rejected == 1
        assert manager.server_info()["sessions_shed"] == 1

    def test_shed_over_the_wire_when_queue_is_full(self, served):
        gateway, _ = served
        manager = gateway.manager
        gateway.max_admission_queue = 0  # every queued open sheds instantly
        with ServeClient(port=gateway.port) as c1, ServeClient(port=gateway.port) as c2:
            held = [c1.open_session(), c1.open_session()]
            with pytest.raises(ServeError) as exc:
                c2.open_session()
            assert exc.value.code == "at_capacity"
            assert exc.value.retry_after and exc.value.retry_after > 0
            assert manager.sessions_shed >= 1
            for sess in held:
                sess.close()

    def test_circuit_breaker_throttles_then_recovers(self, served):
        gateway, _ = served  # breaker_threshold=3, cooldown 0.6s
        with socket.create_connection(("127.0.0.1", gateway.port), timeout=10) as sock:
            rfile = sock.makefile("rb")

            def rt(obj: dict) -> dict:
                sock.sendall(json.dumps(obj).encode() + b"\n")
                return json.loads(rfile.readline())

            for _ in range(3):
                assert rt({"op": "frobnicate"})["error"] == "bad_request"
            tripped = rt({"op": "ping"})
            assert tripped["error"] == "throttled"
            assert tripped["retry_after"] > 0
            time.sleep(tripped["retry_after"] + 0.2)
            assert rt({"op": "ping"})["ok"]  # breaker closed again


# ---------------------------------------------------------------------- #
# Journal-replay audit scrub
# ---------------------------------------------------------------------- #


class TestAuditScrub:
    def test_detects_and_repairs_silent_lane_corruption(self):
        config = _config(seed=31)
        manager = SessionManager(_backend(lanes=2, config=config))
        rec = manager.open()
        ops = _stream(random.Random(11), 30)
        _apply(manager, rec.sid, ops)
        good = _ref_table(config, rec.salt, ops)
        assert manager.q_row(rec.sid) == good

        # A stray bit flip above the ECC layer: not in the journal, so
        # only the replay audit can see it.
        manager.backend.q[rec.lane, 5] = int(manager.backend.q[rec.lane, 5]) ^ (1 << 6)
        assert manager.q_row(rec.sid) != good
        assert manager.audit_sessions() == [rec.sid]
        assert manager.repairs == 1 and manager.audits >= 1
        assert manager.q_row(rec.sid) == good
        # A clean pass audits without repairing.
        assert manager.audit_sessions() == []
        assert manager.repairs == 1


# ---------------------------------------------------------------------- #
# Backend failover (sharded -> vectorized)
# ---------------------------------------------------------------------- #


class TestFailover:
    def test_failover_is_bit_exact_and_traffic_continues(self):
        config = _config(seed=37)
        backend = _backend(engine="sharded", lanes=4, config=config)
        manager = SessionManager(backend, checkpoint_every=8, failover="vectorized")
        try:
            rng = random.Random(0xFA11)
            recs, streams = [], []
            for _ in range(2):
                rec = manager.open()
                ops = _stream(rng, 25)
                _apply(manager, rec.sid, ops)
                recs.append(rec)
                streams.append(list(ops))

            name = manager.failover()
            assert name == "VectorizedFleetBackend"
            assert manager.backend is not backend
            assert manager.failovers == 1
            assert all(
                p is None or not p.is_alive() for p in backend._procs
            )  # old backend torn down

            for rec, ops in zip(recs, streams):
                assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)
                more = _stream(rng, 15)
                _apply(manager, rec.sid, more)
                ops.extend(more)
                assert manager.q_row(rec.sid) == _ref_table(config, rec.salt, ops)

            # Lanes freed before failover re-seed cleanly on the new
            # backend too.
            fresh = manager.open()
            manager.learn(fresh.sid, 0, 0, 1.0, 1)
            assert manager.q_row(fresh.sid) == _ref_table(
                config, fresh.salt, [("learn", 0, 0, 1.0, 1, False)]
            )
        finally:
            getattr(manager.backend, "close", lambda: None)()


# ---------------------------------------------------------------------- #
# The full seeded campaign
# ---------------------------------------------------------------------- #


def test_chaos_campaign_quick():
    """One seeded campaign end to end: every tenant bit-exact or cleanly
    errored, the hang and kill detected, the burst shed with hints."""
    result = run_chaos_campaign(
        seed=20260808,
        seconds=4.0,
        lanes=4,
        workers=2,
        burst_clients=8,
        num_states=32,
        extras=2,
    )
    assert result["ok"], result["problems"]
    assert result["tenants"]["failed"] == 0
    assert result["backend"]["hangs"] >= 1
    assert result["server"]["recoveries"] >= 1
