"""Tests for the bandit accelerator customisations (§VII-B)."""

import numpy as np
import pytest

from repro.core.bandit_accel import (
    EpsilonGreedyBanditAccelerator,
    Exp3Accelerator,
    StatefulBanditAccelerator,
    bandit_cycles_per_sample,
)
from repro.envs.bandits import BanditEnv, NormalArm, StatefulBanditEnv


def easy_env(seed=3):
    """Widely separated arms: the best is unambiguous."""
    return BanditEnv(
        [NormalArm(0.0, 0.5), NormalArm(5.0, 0.5), NormalArm(1.0, 0.5)], seed=seed
    )


class TestCyclesPerSample:
    def test_greedy_single_cycle(self):
        assert bandit_cycles_per_sample(8, probability_policy=False) == 1.0

    def test_probability_log_cost(self):
        assert bandit_cycles_per_sample(8, probability_policy=True) == 3.0
        assert bandit_cycles_per_sample(16, probability_policy=True) == 4.0


class TestEpsilonGreedy:
    def test_finds_best_arm(self):
        env = easy_env()
        acc = EpsilonGreedyBanditAccelerator(env, epsilon=0.1, seed=3)
        res = acc.run(4000)
        late = res.chosen[2000:]
        assert np.mean(late == env.best_arm) > 0.8

    def test_q_estimates_track_means(self):
        env = easy_env()
        acc = EpsilonGreedyBanditAccelerator(env, alpha=0.125, epsilon=0.2, seed=3)
        acc.run(6000)
        q = acc.q_float()
        assert abs(q[1] - 5.0) < 0.7
        assert q[1] > q[0] and q[1] > q[2]

    def test_regret_sublinear(self):
        env = easy_env()
        acc = EpsilonGreedyBanditAccelerator(env, epsilon=0.1, seed=3)
        res = acc.run(8000)
        regret = res.cumulative_regret(env)
        first, second = regret[3999], regret[-1] - regret[3999]
        assert second < first  # later half accumulates less

    def test_deterministic(self):
        runs = []
        for _ in range(2):
            acc = EpsilonGreedyBanditAccelerator(easy_env(seed=5), seed=5)
            runs.append(acc.run(500).chosen)
        assert np.array_equal(runs[0], runs[1])

    def test_mean_reward(self):
        acc = EpsilonGreedyBanditAccelerator(easy_env(), epsilon=0.1, seed=3)
        res = acc.run(3000)
        assert res.mean_reward > 3.0


class TestExp3:
    def test_probabilities_simplex(self):
        acc = Exp3Accelerator(easy_env(), gamma_exp=0.2, reward_range=(-2, 7), seed=4)
        acc.run(1000)
        p = acc.probabilities()
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0).all()

    def test_exploration_floor(self):
        acc = Exp3Accelerator(easy_env(), gamma_exp=0.2, reward_range=(-2, 7), seed=4)
        acc.run(3000)
        assert acc.probabilities().min() >= 0.2 / 3 - 1e-9

    def test_concentrates_on_best(self):
        env = easy_env()
        acc = Exp3Accelerator(env, gamma_exp=0.15, reward_range=(-2, 7), seed=4)
        acc.run(4000)
        assert int(np.argmax(acc.probabilities())) == env.best_arm

    def test_prob_table_quantised(self):
        acc = Exp3Accelerator(easy_env(), seed=4)
        table = acc.prob_table_raw()
        assert table.dtype == np.int64
        assert (table >= 0).all()
        assert table.max() <= acc.prob_format.raw_max

    def test_weights_bounded(self):
        acc = Exp3Accelerator(easy_env(), gamma_exp=0.5, reward_range=(0, 1), seed=4)
        acc.run(5000)
        assert np.isfinite(acc.weights).all()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Exp3Accelerator(easy_env(), gamma_exp=0.0)
        with pytest.raises(ValueError):
            Exp3Accelerator(easy_env(), reward_range=(1.0, 0.0))


class TestStateful:
    def _env(self, seed=6):
        return StatefulBanditEnv(
            good_means=[2.0, 0.0], bad_means=[0.0, 2.0], std=0.3, flip_p=0.02, seed=seed
        )

    def test_runs_and_records(self):
        acc = StatefulBanditAccelerator(self._env(), seed=6)
        res = acc.run(2000)
        assert res.pulls == 2000
        assert acc.q_float().shape == (4, 2)

    def test_beats_static_choice(self):
        """Tracking the arm state must beat always pulling one arm."""
        acc = StatefulBanditAccelerator(self._env(), epsilon=0.1, seed=6)
        res = acc.run(20_000)
        # either arm alone averages ~1.0; state-aware play should exceed it
        assert res.mean_reward > 1.1

    def test_q_differentiates_states(self):
        acc = StatefulBanditAccelerator(self._env(), epsilon=0.2, seed=6)
        acc.run(20_000)
        q = acc.q_float()
        # state 0b00 (both arms "good"): arm 0 pays 2.0, arm 1 pays 0.0;
        # state 0b11 (both "bad"): arm 0 pays 0.0, arm 1 pays 2.0.
        assert q[0b00, 0] > q[0b00, 1]
        assert q[0b11, 1] > q[0b11, 0]


class TestUcb1:
    def test_low_regret(self):
        env = easy_env()
        from repro.core.bandit_accel import Ucb1Accelerator

        acc = Ucb1Accelerator(env, c=2.0)
        res = acc.run(4000)
        # UCB1's regret on well-separated arms is logarithmic — far below
        # epsilon-greedy's linear exploration tax.
        assert float(res.cumulative_regret(env)[-1]) < 100.0

    def test_means_converge(self):
        from repro.core.bandit_accel import Ucb1Accelerator

        env = easy_env()
        acc = Ucb1Accelerator(env)
        acc.run(5000)
        assert abs(acc.q_float()[env.best_arm] - 5.0) < 0.3

    def test_every_arm_tried_first(self):
        from repro.core.bandit_accel import Ucb1Accelerator

        env = easy_env()
        acc = Ucb1Accelerator(env)
        res = acc.run(3)
        assert sorted(res.chosen.tolist()) == [0, 1, 2]

    def test_counts_sum(self):
        from repro.core.bandit_accel import Ucb1Accelerator

        acc = Ucb1Accelerator(easy_env())
        acc.run(500)
        assert int(acc.counts.sum()) == 500
        assert acc.t == 500

    def test_rejects_bad_c(self):
        from repro.core.bandit_accel import Ucb1Accelerator

        with pytest.raises(ValueError):
            Ucb1Accelerator(easy_env(), c=0.0)
