"""Tests for the BRAM/URAM block models and TableRam."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.memory import (
    BRAM18,
    BRAM36,
    URAM288,
    TableRam,
    blocks_for_table,
    table_bits,
)


class TestBlockKind:
    def test_bram36_capacity(self):
        assert BRAM36.capacity_bits == 36 * 1024

    def test_single_block_small_table(self):
        assert BRAM36.blocks_for(512, 16) == 1

    def test_wide_table_bit_slices(self):
        # 512 x 144 needs two 512x72 slices
        assert BRAM36.blocks_for(512, 144) == 2

    def test_deep_table_address_slices(self):
        # 4096 x 18 -> two 2048x18 blocks
        assert BRAM36.blocks_for(4096, 18) == 2

    def test_paper_peak_case(self):
        """262144 states x 8 actions x 16 bits: the Fig. 4 78 % point."""
        pairs = 262144 * 8
        q_blocks = BRAM36.blocks_for(pairs, 16)
        assert q_blocks == 1024  # 2048-deep x 18-wide config

    def test_best_aspect_chosen(self):
        # 32768 x 1 fits a single block only in the x1 config
        assert BRAM36.blocks_for(32768, 1) == 1

    def test_bram18_half(self):
        assert BRAM18.blocks_for(1024, 18) == 1

    def test_uram_packing(self):
        # 16K entries of 16 bits pack into one URAM via the 16K x 18 view
        assert URAM288.blocks_for(16384, 16) == 1

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            BRAM36.blocks_for(0, 8)

    def test_helpers(self):
        assert blocks_for_table(512, 16) == 1
        assert table_bits(100, 16) == 1600


class TestTableRam:
    def test_init_fill(self):
        t = TableRam(8, 16, fill=7)
        assert t.read(0) == 7

    def test_write_commit_cycle(self):
        t = TableRam(8, 16)
        t.write(3, 42)
        assert t.read(3) == 0  # read-first: not visible before the edge
        t.commit()
        assert t.read(3) == 42

    def test_write_now_immediate(self):
        t = TableRam(8, 16)
        t.write_now(2, 9)
        assert t.read(2) == 9

    def test_same_address_collision_counted(self):
        t = TableRam(8, 16)
        t.write(3, 1)
        t.write(3, 2)
        collisions = t.commit()
        assert collisions == 1
        assert t.read(3) == 2  # later port wins
        assert t.stats.write_collisions == 1

    def test_distinct_addresses_no_collision(self):
        t = TableRam(8, 16)
        t.write(1, 1)
        t.write(2, 2)
        assert t.commit() == 0

    def test_port_overflow_raises(self):
        t = TableRam(8, 16)
        t.write(1, 1)
        t.write(2, 2)
        t.write(3, 3)
        with pytest.raises(RuntimeError):
            t.commit()

    def test_out_of_range_write_raises(self):
        t = TableRam(8, 16)
        with pytest.raises(IndexError):
            t.write(8, 1)

    def test_read_many(self):
        t = TableRam(8, 16)
        t.write_many_now([0, 1, 2], [10, 11, 12])
        assert list(t.read_many([2, 0])) == [12, 10]

    def test_stats_counters(self):
        t = TableRam(8, 16)
        t.read(0)
        t.read(1)
        t.write(0, 5)
        t.commit()
        assert t.stats.reads == 2
        assert t.stats.writes == 1
        t.stats.reset()
        assert t.stats.reads == 0

    def test_blocks_property(self):
        t = TableRam(512, 16)
        assert t.blocks == 1
        assert t.bits == 512 * 16

    def test_snapshot_is_copy(self):
        t = TableRam(4, 16)
        snap = t.snapshot()
        t.write_now(0, 99)
        assert snap[0] == 0

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            TableRam(0, 16)
        with pytest.raises(ValueError):
            TableRam(4, 0)
        with pytest.raises(ValueError):
            TableRam(4, 65)


@given(
    st.integers(min_value=1, max_value=1 << 22),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100)
def test_blocks_cover_payload(depth, width):
    """Allocated blocks always hold at least the payload bits (property)."""
    blocks = BRAM36.blocks_for(depth, width)
    assert blocks * BRAM36.capacity_bits >= depth * width * 0.5
    # and never absurdly over-allocate beyond one block per aspect slice
    assert blocks <= (depth // 512 + 1) * (width // 1 + 1)


@given(st.integers(min_value=1, max_value=1 << 20), st.integers(min_value=1, max_value=64))
@settings(max_examples=100)
def test_blocks_monotone_in_depth(depth, width):
    """More entries never need fewer blocks (property)."""
    assert BRAM36.blocks_for(depth + 1, width) >= BRAM36.blocks_for(depth, width)
