"""Golden-trace regression pins.

The first 24 update records of a fixed (environment, config, seed) are
hardcoded below.  Any change to LFSR polynomials, draw discipline
(decimation), fixed-point rounding, Qmax maintenance or episode handling
shows up here as an exact diff — the canary for "we silently changed
the machine's semantics".  If a change is *intentional*, regenerate the
constants (the command is in the comment) and say so in the change.

The SARSA trace doubles as living documentation of the paper's
monotonic-Qmax pinning artifact: the agent enters a wall corner at
sample 4 and grinds Q(6, left) down to its fixed point (-16320 raw =
-255.0) forever, exactly the behaviour ablation_qmax quantifies.
"""


from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.pipeline import QTAccelPipeline
from repro.envs.gridworld import GridWorld

# Regenerate with:
#   python - <<'PY'
#   from repro.envs import GridWorld
#   from repro.core import QTAccelConfig, FunctionalSimulator
#   mdp = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
#   for cfg in (QTAccelConfig.qlearning(seed=5), QTAccelConfig.sarsa(seed=5)):
#       f = FunctionalSimulator(mdp, cfg); t = f.enable_trace(); f.run(24)
#       print(t)
#   PY

GOLDEN_QL = [
    (0, 38, 0, 0),
    (1, 30, 2, 0),
    (2, 38, 1, 0),
    (3, 37, 0, -8160),
    (4, 37, 0, -12240),
    (5, 37, 0, -14280),
    (6, 37, 0, -15300),
    (7, 37, 1, 0),
    (8, 36, 3, 0),
    (9, 37, 0, -15810),
    (10, 37, 3, 0),
    (11, 38, 2, 0),
    (12, 46, 3, 0),
    (13, 47, 0, 0),
    (14, 39, 3, -8160),
    (15, 39, 0, 0),
    (16, 31, 1, 0),
    (17, 30, 2, 0),
    (18, 38, 2, 0),
    (19, 46, 0, 0),
    (20, 38, 2, 0),
    (21, 46, 3, 0),
    (22, 47, 3, -8160),
    (23, 47, 1, 0),
]

GOLDEN_SARSA = [
    (0, 38, 0, 0),
    (1, 30, 0, 0),
    (2, 22, 0, 0),
    (3, 14, 0, 0),
    (4, 6, 0, -8160),
    (5, 6, 0, -12240),
    (6, 6, 0, -14280),
    (7, 6, 0, -15300),
    (8, 6, 0, -15810),
    (9, 6, 0, -16065),
    (10, 6, 0, -16193),
    (11, 6, 0, -16257),
    (12, 6, 0, -16289),
    (13, 6, 0, -16305),
    (14, 6, 0, -16313),
    (15, 6, 0, -16317),
    (16, 6, 0, -16319),
    (17, 6, 0, -16320),
    (18, 6, 0, -16320),
    (19, 6, 0, -16320),
    (20, 6, 0, -16320),
    (21, 6, 0, -16320),
    (22, 6, 0, -16320),
    (23, 6, 0, -16320),
]


def _mdp():
    return GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()


class TestGoldenTraces:
    def test_functional_qlearning(self):
        sim = FunctionalSimulator(_mdp(), QTAccelConfig.qlearning(seed=5))
        trace = sim.enable_trace()
        sim.run(len(GOLDEN_QL))
        assert trace == GOLDEN_QL

    def test_functional_sarsa(self):
        sim = FunctionalSimulator(_mdp(), QTAccelConfig.sarsa(seed=5))
        trace = sim.enable_trace()
        sim.run(len(GOLDEN_SARSA))
        assert trace == GOLDEN_SARSA

    def test_pipeline_reproduces_golden(self):
        """The cycle-accurate engine replays the same golden stream."""
        pipe = QTAccelPipeline(_mdp(), QTAccelConfig.qlearning(seed=5))
        trace = pipe.enable_trace()
        pipe.run(len(GOLDEN_QL))
        assert trace == GOLDEN_QL

    def test_telemetry_counters_on_golden_prefix(self):
        """Telemetry counters for the first 5 golden QL samples, pinned.

        The values are readable off GOLDEN_QL: samples 3 and 4 update
        the same (state, action) pair back to back, which exercises the
        carried-operand fixups (S2/S3 ``q_operand``) and the bootstrap
        forward (``S3.qnext``); every new Q is <= the 0 initial value,
        so the monotonic Qmax rule never raises.
        """
        from repro.telemetry import TelemetrySession, verify_paper_invariants

        with TelemetrySession() as session:
            pipe = QTAccelPipeline(_mdp(), QTAccelConfig.qlearning(seed=5))
            pipe.run(5)

        verify_paper_invariants(pipe, samples=5, runs=1)
        counters = session.registry.as_dict()
        assert counters == {
            "pipe0.forward.S1.view_q": 0,
            "pipe0.forward.S1.view_qmax": 0,
            "pipe0.forward.S2.q_operand": 1,
            "pipe0.forward.S2.view_q": 0,
            "pipe0.forward.S2.view_qmax": 2,
            "pipe0.forward.S3.q_operand": 1,
            "pipe0.forward.S3.qnext": 2,
            "pipe0.qmax_raises": 0,
            "pipe0.stage.S1.active": 5,
            "pipe0.stage.S2.active": 5,
            "pipe0.stage.S3.active": 5,
            "pipe0.stage.S4.active": 5,
        }
        assert session.recorder.counts_by_kind() == {
            "issue": 5,
            "select": 5,
            "forward": 6,
            "retire": 5,
        }

    def test_robustness_counters_on_golden_prefix(self):
        """Robustness counters for directed SEUs on the golden QL run,
        pinned — and the trace itself must stay exactly GOLDEN_QL,
        because SECDED corrects every strike before it is consumed.

        Strikes: a Q-word flip at pair (37, 0) and a Qmax flip at state
        37, both landing after sample 2 (the words are next read by
        sample 3); plus one latent flip in the never-visited pair (0, 0)
        that only the final scrub sweep can see.
        """
        from repro.robustness import FaultInjector, Scrubber
        from repro.telemetry import TelemetrySession

        with TelemetrySession() as session:
            sim = FunctionalSimulator(
                _mdp(), QTAccelConfig.qlearning(seed=5, ecc_tables=True)
            )
            trace = sim.enable_trace()
            T = sim.tables
            injector = FaultInjector(seed=0)
            injector.add_tables(T)
            injector.schedule(3, T.q, T.pair_addr(37, 0), 13)
            injector.schedule(3, T.qmax, 37, 9)
            injector.schedule(24, T.q, T.pair_addr(0, 0), 3)
            scrubber = Scrubber(burst=8)
            scrubber.add_tables(T)

            sim.run(3)
            injector.step(3)  # both sample-3 strikes land here
            sim.run(21)
            injector.step(21)  # the latent strike lands after the run
            scrubber.scrub_all()

        assert trace == GOLDEN_QL  # every upset corrected before use
        assert injector.injected_scheduled == 3
        assert injector.injected == 0  # no Poisson process configured
        assert T.q.ecc_corrected == 2  # pair (37,0) on read, pair (0,0) by scrub
        assert T.qmax.ecc_corrected == 1
        assert T.q.ecc_detected == T.qmax.ecc_detected == 0
        assert scrubber.corrected == 1  # only the latent flip was left to sweep
        assert scrubber.detected == 0
        assert scrubber.scrub_repairs == 0

        counters = session.registry.as_dict()
        assert counters["faults.injected_scheduled"] == 3
        assert "faults.injected" not in counters  # lazy: never fired

        # And the table ends bit-identical to an undisturbed ECC-less run.
        ref = FunctionalSimulator(_mdp(), QTAccelConfig.qlearning(seed=5))
        ref.run(24)
        assert (T.q.data == ref.tables.q.data).all()

    def test_sarsa_wall_grind_is_the_qmax_artifact(self):
        """The golden SARSA trace shows the pinning in miniature: the
        exploit action stays 'left' (0) against a wall while its Q
        converges to exactly the -255 penalty's fixed point."""
        raw = GOLDEN_SARSA[-1][3]
        fmt = QTAccelConfig().q_format
        assert fmt.to_float(raw) == -255.0
        assert all(rec[2] == 0 for rec in GOLDEN_SARSA[4:])
