"""Tests for the functional simulator's own behaviour."""

import numpy as np
import pytest

from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.envs.random_mdp import chain_mdp


class TestBasics:
    def test_sample_count(self, empty16, ql_config):
        sim = FunctionalSimulator(empty16, ql_config)
        sim.run(123)
        assert sim.stats.samples == 123

    def test_resumable(self, empty16, ql_config):
        sim = FunctionalSimulator(empty16, ql_config)
        sim.run(100)
        sim.run(100)
        assert sim.stats.samples == 200

    def test_negative_rejected(self, empty16, ql_config):
        with pytest.raises(ValueError):
            FunctionalSimulator(empty16, ql_config).run(-1)

    def test_deterministic(self, empty16):
        runs = []
        for _ in range(2):
            sim = FunctionalSimulator(empty16, QTAccelConfig.qlearning(seed=8))
            sim.run(2000)
            runs.append(sim.tables.q.data.copy())
        assert np.array_equal(runs[0], runs[1])

    def test_seeds_differ(self, empty16):
        a = FunctionalSimulator(empty16, QTAccelConfig.qlearning(seed=8))
        b = FunctionalSimulator(empty16, QTAccelConfig.qlearning(seed=9))
        a.run(2000)
        b.run(2000)
        assert not np.array_equal(a.tables.q.data, b.tables.q.data)

    def test_state_log(self, empty16, ql_config):
        sim = FunctionalSimulator(empty16, ql_config)
        sim.state_log = []
        sim.run(50)
        assert len(sim.state_log) == 50
        assert all(0 <= s < empty16.num_states for s in sim.state_log)


class TestSemantics:
    def test_terminal_masks_bootstrap(self):
        """The write into a terminal transition uses target = R only."""
        mdp = chain_mdp(3, reward=64.0)
        cfg = QTAccelConfig.qlearning(seed=1, alpha=1.0, gamma=0.9)
        sim = FunctionalSimulator(mdp, cfg)
        sim.run(500)
        q = sim.q_float()
        # state 1, action 0 enters the terminal: Q converges to exactly R
        assert q[1, 0] == pytest.approx(64.0, abs=0.1)

    def test_episode_restart_counted(self):
        mdp = chain_mdp(3)
        sim = FunctionalSimulator(mdp, QTAccelConfig.qlearning(seed=1))
        sim.run(1000)
        assert sim.stats.episodes > 50

    def test_qlearning_converges_on_chain(self):
        mdp = chain_mdp(6)
        cfg = QTAccelConfig.qlearning(seed=1, alpha=0.5, gamma=0.5)
        sim = FunctionalSimulator(mdp, cfg)
        sim.run(30_000)
        q = sim.q_float()
        q_star = mdp.optimal_q(0.5)
        # advancing-action values match Q* within fixed-point tolerance
        assert np.allclose(q[:-1, 0], q_star[:-1, 0], atol=1.0)

    def test_exact_qmax_supported(self, grid8):
        cfg = QTAccelConfig.sarsa(seed=7, qmax_mode="exact")
        sim = FunctionalSimulator(grid8, cfg)
        sim.run(2000)
        rows = sim.tables.q.data.reshape(grid8.num_states, grid8.num_actions)
        assert np.array_equal(sim.tables.qmax.data, rows.max(axis=1))

    def test_behavior_lag_flag_changes_nothing_for_qlearning(self, grid8):
        """Q-Learning has no stage-1 reads, so the lag flag is inert."""
        runs = []
        for lag in (True, False):
            sim = FunctionalSimulator(grid8, QTAccelConfig.qlearning(seed=3), behavior_lag=lag)
            sim.run(3000)
            runs.append(sim.tables.q.data.copy())
        assert np.array_equal(runs[0], runs[1])
