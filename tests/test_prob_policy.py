"""Tests for the probability-table (Boltzmann) policy engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import QTAccelConfig
from repro.core.metrics import convergence_report
from repro.core.prob_policy import (
    WEIGHT_FORMAT,
    BoltzmannSimulator,
    boltzmann_weights,
    selection_cycles,
)
from repro.envs.gridworld import GridWorld
from repro.fixedpoint import ops


class TestSelectionCycles:
    def test_log2_cost(self):
        assert selection_cycles(2) == 1
        assert selection_cycles(4) == 2
        assert selection_cycles(8) == 3
        assert selection_cycles(16) == 4

    def test_floor_at_one(self):
        assert selection_cycles(1) == 1


class TestWeights:
    def test_uniform_for_equal_q(self):
        w = boltzmann_weights(np.zeros(4, dtype=np.int64), q_fmt=QTAccelConfig().q_format, temperature=10.0)
        assert len(set(w.tolist())) == 1

    def test_best_action_gets_max_weight(self):
        q_fmt = QTAccelConfig().q_format
        row = ops.quantize_array([0.0, 100.0, 50.0, -10.0], q_fmt)
        w = boltzmann_weights(row, q_fmt=q_fmt, temperature=20.0)
        assert int(np.argmax(w)) == 1
        assert int(w[1]) == WEIGHT_FORMAT.quantize(1.0)  # max-normalised

    def test_no_zero_weights(self):
        q_fmt = QTAccelConfig().q_format
        row = ops.quantize_array([0.0, 500.0], q_fmt)
        w = boltzmann_weights(row, q_fmt=q_fmt, temperature=1.0)
        assert (w >= 1).all()

    def test_temperature_flattens(self):
        q_fmt = QTAccelConfig().q_format
        row = ops.quantize_array([0.0, 100.0], q_fmt)
        sharp = boltzmann_weights(row, q_fmt=q_fmt, temperature=5.0)
        flat = boltzmann_weights(row, q_fmt=q_fmt, temperature=500.0)
        assert flat[0] / flat[1] > sharp[0] / sharp[1]

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            boltzmann_weights(np.zeros(2, dtype=np.int64), q_fmt=QTAccelConfig().q_format, temperature=0.0)


@pytest.fixture(scope="module")
def soft_grid():
    return GridWorld.random(
        8, 4, obstacle_density=0.15, seed=2, wall_penalty=-20.0, step_reward=-1.0
    ).to_mdp()


class TestSimulator:
    def test_runs(self, soft_grid):
        sim = BoltzmannSimulator(soft_grid, QTAccelConfig.sarsa(seed=7), temperature=40.0)
        stats = sim.run(2000)
        assert stats.samples == 2000
        assert stats.cycles(4) == 2000 * 2

    def test_probabilities_normalised(self, soft_grid):
        sim = BoltzmannSimulator(soft_grid, QTAccelConfig.sarsa(seed=7))
        sim.run(1000)
        for s in (0, 5, 20):
            p = sim.probabilities(s)
            assert p.sum() == pytest.approx(1.0)
            assert (p > 0).all()

    def test_prob_rows_track_q(self, soft_grid):
        """After training, visited states prefer their greedy action."""
        sim = BoltzmannSimulator(
            soft_grid, QTAccelConfig.sarsa(seed=7), temperature=20.0
        )
        sim.run(60_000)
        q = sim.q_float()
        visited = np.abs(q).sum(axis=1) > 0
        agree = 0
        for s in np.nonzero(visited)[0]:
            agree += int(np.argmax(sim.probabilities(int(s)))) == int(np.argmax(q[s]))
        assert agree / max(1, visited.sum()) > 0.95

    def test_converges(self, soft_grid):
        sim = BoltzmannSimulator(soft_grid, QTAccelConfig.sarsa(seed=7), temperature=40.0)
        sim.run(250_000)
        rep = convergence_report(soft_grid, sim.q_float(), gamma=0.9, samples=250_000)
        assert rep.success > 0.9

    def test_deterministic(self, soft_grid):
        runs = []
        for _ in range(2):
            sim = BoltzmannSimulator(soft_grid, QTAccelConfig.sarsa(seed=7))
            sim.run(3000)
            runs.append(sim.tables.q.data.copy())
        assert np.array_equal(runs[0], runs[1])

    def test_rejects_bad_args(self, soft_grid):
        with pytest.raises(ValueError):
            BoltzmannSimulator(soft_grid, QTAccelConfig.sarsa(), temperature=-1.0)
        sim = BoltzmannSimulator(soft_grid, QTAccelConfig.sarsa())
        with pytest.raises(ValueError):
            sim.run(-1)


@given(temperature=st.floats(min_value=0.5, max_value=500.0, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_weights_ordered_like_q(temperature):
    """Boltzmann weights preserve the Q ordering at any temperature
    (property, up to quantisation ties)."""
    q_fmt = QTAccelConfig().q_format
    row = ops.quantize_array([-100.0, 0.0, 100.0, 255.0], q_fmt)
    w = boltzmann_weights(row, q_fmt=q_fmt, temperature=temperature)
    assert w[0] <= w[1] <= w[2] <= w[3]
