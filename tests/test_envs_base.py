"""Tests for environment abstractions and encodings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.envs.base import (
    ACTIONS_4,
    ACTIONS_8,
    DenseMdp,
    GridEncoding,
    action_vectors,
    bits_for,
)
from repro.envs.random_mdp import chain_mdp


class TestBitsFor:
    def test_values(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(256) == 8
        assert bits_for(257) == 9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bits_for(0)


class TestGridEncoding:
    def test_paper_example_256_states(self):
        """§VI-B: 256 states -> 8-bit address, 4 bits per coordinate."""
        enc = GridEncoding.square(16)
        assert enc.num_states == 256
        assert enc.encode(0xA, 0x5) == 0xA5

    def test_roundtrip(self):
        enc = GridEncoding.square(8)
        for x in range(8):
            for y in range(8):
                assert enc.decode(enc.encode(x, y)) == (x, y)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            GridEncoding.square(10)

    def test_rejects_out_of_range_coords(self):
        enc = GridEncoding.square(4)
        with pytest.raises(ValueError):
            enc.encode(4, 0)
        with pytest.raises(ValueError):
            enc.decode(16)

    def test_rectangular(self):
        enc = GridEncoding(x_bits=3, y_bits=2)
        assert enc.width == 8 and enc.height == 4
        assert enc.encode(7, 3) == (7 << 2) | 3


class TestActionEncodings:
    def test_four_action_paper_order(self):
        """§VI-B: 00 left, 01 up, 10 right, 11 down."""
        assert ACTIONS_4[0b00] == (-1, 0)
        assert ACTIONS_4[0b01] == (0, -1)
        assert ACTIONS_4[0b10] == (1, 0)
        assert ACTIONS_4[0b11] == (0, 1)

    def test_eight_action_clockwise(self):
        """§VI-B: 000 left, 001 top-left, 010 up, 011 top-right, ..."""
        assert ACTIONS_8[0] == (-1, 0)
        assert ACTIONS_8[1] == (-1, -1)
        assert ACTIONS_8[2] == (0, -1)
        assert ACTIONS_8[3] == (1, -1)
        assert ACTIONS_8[4] == (1, 0)

    def test_eight_actions_all_distinct_unit_moves(self):
        assert len(set(ACTIONS_8)) == 8
        for dx, dy in ACTIONS_8:
            assert max(abs(dx), abs(dy)) == 1

    def test_action_vectors_dispatch(self):
        assert action_vectors(4) is ACTIONS_4
        assert action_vectors(8) is ACTIONS_8
        with pytest.raises(ValueError):
            action_vectors(6)


class TestDenseMdp:
    def _tiny(self):
        return DenseMdp(
            next_state=np.array([[1, 0], [1, 1]], dtype=np.int32),
            rewards=np.array([[1.0, 0.0], [0.0, 0.0]]),
            terminal=np.array([False, True]),
            start_states=np.array([0]),
        )

    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            DenseMdp(
                next_state=np.zeros((2, 2), dtype=np.int32),
                rewards=np.zeros((2, 3)),
                terminal=np.zeros(2, dtype=bool),
                start_states=np.array([0]),
            )

    def test_out_of_range_transitions_rejected(self):
        with pytest.raises(ValueError):
            DenseMdp(
                next_state=np.array([[5, 0], [0, 0]], dtype=np.int32),
                rewards=np.zeros((2, 2)),
                terminal=np.zeros(2, dtype=bool),
                start_states=np.array([0]),
            )

    def test_requires_start_states(self):
        with pytest.raises(ValueError):
            DenseMdp(
                next_state=np.zeros((2, 2), dtype=np.int32),
                rewards=np.zeros((2, 2)),
                terminal=np.zeros(2, dtype=bool),
                start_states=np.array([], dtype=np.int32),
            )

    def test_step(self):
        mdp = self._tiny()
        nxt, r, term = mdp.step(0, 0)
        assert (nxt, r, term) == (1, 1.0, True)

    def test_properties(self):
        mdp = self._tiny()
        assert mdp.num_states == 2
        assert mdp.num_actions == 2
        assert mdp.num_pairs == 4


class TestOptimalQ:
    def test_chain_closed_form(self):
        """Q* of the corridor is reward * gamma^distance."""
        mdp = chain_mdp(5, reward=100.0)
        q = mdp.optimal_q(0.5)
        # advancing action values: gamma^(d-1) * 100
        assert q[3, 0] == pytest.approx(100.0)
        assert q[2, 0] == pytest.approx(50.0)
        assert q[1, 0] == pytest.approx(25.0)
        assert q[0, 0] == pytest.approx(12.5)
        # staying actions bootstrap the state's own value
        assert q[3, 1] == pytest.approx(50.0)

    def test_terminal_rows_zero(self):
        mdp = chain_mdp(5)
        q = mdp.optimal_q(0.9)
        assert np.all(q[-1] == 0.0)

    def test_greedy_policy_advances(self):
        mdp = chain_mdp(6)
        pol = mdp.greedy_policy(mdp.optimal_q(0.9))
        assert np.all(pol[:-1] == 0)


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
@settings(max_examples=30)
def test_grid_encoding_roundtrip_property(xb, yb):
    enc = GridEncoding(x_bits=xb, y_bits=yb)
    for state in range(0, enc.num_states, max(1, enc.num_states // 64)):
        x, y = enc.decode(state)
        assert enc.encode(x, y) == state
