"""Tests for the pluggable update-rule API (``repro.algorithms``).

Covers the PR's acceptance matrix: the registry and typed errors, the
``QTAccelConfig`` presets and deprecation shim, hypothesis bit-identity
of the accelerated rules across functional / pipeline / scalar /
vectorized / sharded engines, checkpoint round-trips including the new
per-lane tables, a golden-trace pin for a momentum run, the rule blocks
in ``verify_paper_invariants``, ECC/fault-injection coverage of the new
tables, and the device-model DSP/BRAM accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    IncompatibleRuleError,
    UnknownUpdateRuleError,
    UnsupportedRuleError,
    UpdateRuleError,
    get_rule,
    rule_names,
)
from repro.backends import (
    ScalarFleetBackend,
    ShardedFleetBackend,
    VectorizedFleetBackend,
)
from repro.core.config import QTAccelConfig
from repro.core.engine import make_engine
from repro.core.functional import FunctionalSimulator
from repro.core.pipeline import QTAccelPipeline
from repro.core.policies import PolicyDraws
from repro.envs.gridworld import GridWorld
from repro.envs.random_mdp import random_dense_mdp
from repro.fixedpoint import FxpFormat

GRID = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
LOOPY = random_dense_mdp(16, 4, seed=9, self_loop_bias=0.5)

Q_FORMATS = {
    "default": FxpFormat(16, 6),
    "nearest": FxpFormat(16, 6, rounding="nearest"),
    "floatlike": FxpFormat(48, 24),
}

#: The accelerated presets under test, name -> constructor kwargs.
ACCELERATED = {
    "momentum_qlearning": {},
    "target_qlearning": {},
    "target_sync": {"update_rule": "target_qlearning", "target_sync_period": 64},
}


def _accel_config(variant, **kw):
    if variant == "momentum_qlearning":
        return QTAccelConfig.momentum(**kw)
    if variant == "target_qlearning":
        return QTAccelConfig.target_q(**kw)
    kw.update(ACCELERATED["target_sync"])
    return QTAccelConfig(**kw)


# ---------------------------------------------------------------------- #
# Registry + config API
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_all_rules_registered(self):
        names = rule_names()
        for name in (
            "qlearning",
            "sarsa",
            "momentum_qlearning",
            "target_qlearning",
        ):
            assert name in names

    def test_aliases_resolve(self):
        assert get_rule("momentum") is get_rule("momentum_qlearning")
        assert get_rule("target_q") is get_rule("target_qlearning")
        assert get_rule("polyak") is get_rule("target_qlearning")

    def test_unknown_rule_typed_error(self):
        with pytest.raises(UnknownUpdateRuleError):
            get_rule("dyna_q")
        with pytest.raises(UnknownUpdateRuleError):
            QTAccelConfig(update_rule="dyna_q")
        # The taxonomy roots in UpdateRuleError and ValueError.
        assert issubclass(UnknownUpdateRuleError, UpdateRuleError)
        assert issubclass(UpdateRuleError, ValueError)

    def test_device_cost_descriptors(self):
        assert get_rule("qlearning").device_cost.extra_pair_tables == 0
        assert get_rule("momentum_qlearning").device_cost.extra_pair_tables == 1
        assert get_rule("momentum_qlearning").device_cost.extra_dsps == 1
        assert get_rule("target_qlearning").device_cost.extra_dsps == 2


class TestConfigApi:
    def test_momentum_preset(self):
        cfg = QTAccelConfig.momentum()
        assert cfg.update_rule == "momentum_qlearning"
        assert cfg.algorithm == "momentum_qlearning"
        assert cfg.rule.kind == "momentum"
        assert cfg.update_policy == "greedy"

    def test_target_preset(self):
        cfg = QTAccelConfig.target_q(target_tau=0.25)
        assert cfg.update_rule == "target_qlearning"
        assert cfg.algorithm == "target_qlearning"
        assert cfg.rule.kind == "target"
        assert cfg.target_tau == 0.25

    def test_algorithm_label_derives_from_rule(self):
        # The label is the registered rule name, not a policy-derived
        # guess — the pre-refactor bug was "qlearning" for every greedy
        # config.
        assert QTAccelConfig.momentum().algorithm == "momentum_qlearning"
        assert QTAccelConfig(update_rule="target").algorithm == "target_qlearning"

    def test_alias_canonicalised_at_construction(self):
        cfg = QTAccelConfig(update_rule="momentum")
        assert cfg.update_rule == "momentum_qlearning"

    def test_stringly_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="update_rule"):
            cfg = QTAccelConfig(behavior_policy="egreedy", update_policy="egreedy")
        assert cfg.algorithm == "sarsa"

    def test_presets_and_with_do_not_warn(self, recwarn):
        cfg = QTAccelConfig.momentum(seed=3)
        cfg.with_(alpha=0.25)
        QTAccelConfig.sarsa()
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_incompatible_rule_policy(self):
        with pytest.raises(IncompatibleRuleError):
            QTAccelConfig(update_rule="momentum_qlearning", update_policy="egreedy")
        with pytest.raises(IncompatibleRuleError):
            QTAccelConfig(update_rule="target_qlearning", update_policy="egreedy")

    def test_rule_parameter_validation(self):
        with pytest.raises(ValueError):
            QTAccelConfig.momentum(momentum_beta=1.0)
        with pytest.raises(ValueError):
            QTAccelConfig.target_q(target_tau=0.0)
        with pytest.raises(ValueError):
            QTAccelConfig.target_q(target_sync_period=-1)

    def test_pipeline_rejects_hard_sync(self):
        cfg = QTAccelConfig.target_q(seed=1, target_sync_period=32)
        with pytest.raises(UnsupportedRuleError):
            QTAccelPipeline(GRID, cfg)
        with pytest.raises(UnsupportedRuleError):
            make_engine(cfg, engine="pipeline", mdp=GRID)
        # The functional engine supports it.
        make_engine(cfg, mdp=GRID).run(16)


# ---------------------------------------------------------------------- #
# Golden trace: momentum run pinned sample by sample
# ---------------------------------------------------------------------- #

# Regenerate with:
#   python - <<'PY'
#   from repro.envs import GridWorld
#   from repro.core import QTAccelConfig, FunctionalSimulator
#   mdp = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
#   f = FunctionalSimulator(mdp, QTAccelConfig.momentum(seed=5))
#   t = f.enable_trace(); f.run(24); print(t)
#   PY
GOLDEN_MOMENTUM = [
    (0, 38, 0, 0),
    (1, 30, 2, 0),
    (2, 38, 1, 0),
    (3, 37, 0, -8160),
    (4, 37, 0, -14688),
    (5, 37, 0, -17463),
    (6, 37, 0, -17724),
    (7, 37, 1, 0),
    (8, 36, 3, 0),
    (9, 37, 0, -17101),
    (10, 37, 3, 0),
    (11, 38, 2, 0),
    (12, 46, 3, 0),
    (13, 47, 0, 0),
    (14, 39, 3, -8160),
    (15, 39, 0, 0),
    (16, 31, 1, 0),
    (17, 30, 2, 0),
    (18, 38, 2, 0),
    (19, 46, 0, 0),
    (20, 38, 2, 0),
    (21, 46, 3, 0),
    (22, 47, 3, -8160),
    (23, 47, 1, 0),
]


class TestGoldenMomentum:
    def test_functional_momentum(self):
        sim = FunctionalSimulator(GRID, QTAccelConfig.momentum(seed=5))
        trace = sim.enable_trace()
        sim.run(len(GOLDEN_MOMENTUM))
        assert trace == GOLDEN_MOMENTUM

    def test_pipeline_reproduces_golden(self):
        pipe = QTAccelPipeline(GRID, QTAccelConfig.momentum(seed=5))
        trace = pipe.enable_trace()
        pipe.run(len(GOLDEN_MOMENTUM))
        assert trace == GOLDEN_MOMENTUM

    def test_momentum_diverges_from_plain(self):
        """The momentum term must actually change the arithmetic: the
        back-to-back revisits of pair (37, 0) at samples 4-6 overshoot
        plain Q-Learning's trajectory (-14688 vs -12240 at sample 4)."""
        sim = FunctionalSimulator(GRID, QTAccelConfig.qlearning(seed=5))
        trace = sim.enable_trace()
        sim.run(len(GOLDEN_MOMENTUM))
        assert trace[:4] == GOLDEN_MOMENTUM[:4]  # first revisit at 4
        assert trace[4] != GOLDEN_MOMENTUM[4]


# ---------------------------------------------------------------------- #
# Bit identity across engines
# ---------------------------------------------------------------------- #


def assert_pipeline_equivalent(mdp, cfg, n=1200):
    pipe = QTAccelPipeline(mdp, cfg)
    tp = pipe.enable_trace()
    func = FunctionalSimulator(mdp, cfg)
    tf = func.enable_trace()
    pipe.run(n)
    func.run(n)
    assert tp == tf
    assert np.array_equal(pipe.tables.q.data, func.tables.q.data)
    for name, ram in pipe.tables.extra_rams.items():
        assert np.array_equal(ram.data, func.tables.extra_rams[name].data), name


class TestPipelineEquivalence:
    @pytest.mark.parametrize("variant", ["momentum_qlearning", "target_qlearning"])
    @pytest.mark.parametrize("seed", [1, 23])
    def test_forward_mode(self, variant, seed):
        assert_pipeline_equivalent(LOOPY, _accel_config(variant, seed=seed))

    @pytest.mark.parametrize("variant", ["momentum_qlearning", "target_qlearning"])
    def test_stall_mode(self, variant):
        assert_pipeline_equivalent(
            GRID, _accel_config(variant, seed=7, hazard_mode="stall"), n=600
        )

    def test_momentum_follow_qmax(self):
        assert_pipeline_equivalent(
            LOOPY, QTAccelConfig.momentum(seed=11, qmax_mode="follow")
        )


def assert_fleet_matches_functional(backend_cls, mdp, cfg, *, num_agents=3, n=300):
    fleet = backend_cls(mdp, cfg, num_agents=num_agents)
    fleet.run(n)
    for k in range(num_agents):
        f = FunctionalSimulator(
            mdp, cfg, draws=PolicyDraws.from_config(cfg, salt=k)
        )
        f.run(n)
        assert np.array_equal(fleet.q[k], f.tables.q.data), f"lane {k} Q differs"
        if cfg.rule.kind == "momentum":
            assert np.array_equal(
                fleet.momentum[k], f.tables.extra_rams["momentum"].data
            )
        if cfg.rule.kind == "target":
            assert np.array_equal(
                fleet.target[k], f.tables.extra_rams["target"].data
            )
    return fleet


class TestFleetBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        variant=st.sampled_from(sorted(ACCELERATED)),
        alpha=st.sampled_from([0.25, 0.5]),
        qmax_mode=st.sampled_from(["monotonic", "follow"]),
        fmt=st.sampled_from(sorted(Q_FORMATS)),
    )
    def test_vectorized_matches_functional(
        self, seed, variant, alpha, qmax_mode, fmt
    ):
        cfg = _accel_config(
            variant,
            seed=seed,
            alpha=alpha,
            qmax_mode=qmax_mode,
            q_format=Q_FORMATS[fmt],
        )
        assert_fleet_matches_functional(VectorizedFleetBackend, LOOPY, cfg)

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        variant=st.sampled_from(["momentum_qlearning", "target_qlearning"]),
    )
    def test_scalar_matches_functional(self, seed, variant):
        cfg = _accel_config(variant, seed=seed)
        assert_fleet_matches_functional(ScalarFleetBackend, GRID, cfg, n=200)

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(1, 2**16),
        variant=st.sampled_from(sorted(ACCELERATED)),
        workers=st.sampled_from([2, 3]),
    )
    def test_sharded_matches_vectorized(self, seed, variant, workers):
        cfg = _accel_config(variant, seed=seed, qmax_mode="follow")
        vec = VectorizedFleetBackend(LOOPY, cfg, num_agents=5)
        vec.run(96)
        fleet = ShardedFleetBackend(
            LOOPY, cfg, num_agents=5, num_workers=workers, epoch=32,
            mp_context="fork",
        )
        try:
            fleet.run(96)
            assert np.array_equal(fleet.q, vec.q)
            assert np.array_equal(fleet.qmax, vec.qmax)
            if cfg.rule.kind == "momentum":
                assert np.array_equal(fleet.momentum, vec.momentum)
            if cfg.rule.kind == "target":
                assert np.array_equal(fleet.target, vec.target)
            assert fleet.stats.as_dict() == vec.stats.as_dict()
        finally:
            fleet.close()

    def test_make_engine_uniform_rule_selection(self):
        """One config string drives every engine kind to the same bits."""
        cfg = QTAccelConfig.momentum(seed=9)
        func = make_engine(cfg, mdp=GRID)
        pipe = make_engine(cfg, engine="pipeline", mdp=GRID)
        func.run(300)
        pipe.run(300)
        assert np.array_equal(func.tables.q.data, pipe.tables.q.data)
        vec = make_engine(cfg, engine="vectorized", mdps=GRID, num_agents=2)
        vec.run(300)
        ref = FunctionalSimulator(
            GRID, cfg, draws=PolicyDraws.from_config(cfg, salt=0)
        )
        ref.run(300)
        assert np.array_equal(vec.q[0], ref.tables.q.data)


# ---------------------------------------------------------------------- #
# Checkpoints
# ---------------------------------------------------------------------- #


class TestCheckpoints:
    @pytest.mark.parametrize("variant", sorted(ACCELERATED))
    @pytest.mark.parametrize(
        "backend_cls", [VectorizedFleetBackend, ScalarFleetBackend]
    )
    def test_state_dict_round_trip(self, variant, backend_cls):
        cfg = _accel_config(variant, seed=13)
        fleet = backend_cls(LOOPY, cfg, num_agents=4)
        fleet.run(150)
        ckpt = fleet.state_dict()
        fleet.run(150)

        fresh = backend_cls(LOOPY, cfg, num_agents=4)
        fresh.load_state_dict(ckpt)
        fresh.run(150)
        assert np.array_equal(fresh.q, fleet.q)
        if cfg.rule.kind == "momentum":
            assert np.array_equal(fresh.momentum, fleet.momentum)
        if cfg.rule.kind == "target":
            assert np.array_equal(fresh.target, fleet.target)
        assert fresh.stats.as_dict() == fleet.stats.as_dict()

    def test_functional_state_dict_carries_rule_tables(self):
        cfg = QTAccelConfig.target_q(seed=5, target_sync_period=64)
        sim = FunctionalSimulator(GRID, cfg)
        sim.run(200)
        state = sim.state_dict()
        fresh = FunctionalSimulator(GRID, cfg)
        fresh.load_state_dict(state)
        fresh.run(200)
        sim.run(200)
        assert np.array_equal(sim.tables.q.data, fresh.tables.q.data)
        assert np.array_equal(
            sim.tables.extra_rams["target"].data,
            fresh.tables.extra_rams["target"].data,
        )

    def test_lane_state_restores_rule_tables(self):
        cfg = QTAccelConfig.momentum(seed=21)
        fleet = VectorizedFleetBackend(GRID, cfg, num_agents=3)
        fleet.run(120)
        snap = fleet.lane_state(1)
        fleet.run(80)
        fleet.load_lane_state(1, snap)
        assert np.array_equal(
            fleet.momentum[1], np.asarray(snap["momentum"])
        )


# ---------------------------------------------------------------------- #
# Invariants, faults, resources
# ---------------------------------------------------------------------- #


class TestInvariantsAndFaults:
    @pytest.mark.parametrize("variant", ["momentum_qlearning", "target_qlearning"])
    def test_verify_paper_invariants(self, variant):
        from repro.telemetry import verify_paper_invariants

        pipe = QTAccelPipeline(GRID, _accel_config(variant, seed=3))
        pipe.run(500)
        report = verify_paper_invariants(pipe, samples=500, runs=1)
        names = [name for name, _, _ in report.checks]
        assert "rule_tables_present" in names
        assert "rule_tables_drained" in names
        assert "forward_never_stalls" in names

    def test_fault_injector_targets_rule_tables(self):
        from repro.robustness import FaultInjector

        sim = FunctionalSimulator(
            GRID, QTAccelConfig.momentum(seed=5, ecc_tables=True)
        )
        injector = FaultInjector(seed=0)
        injector.add_tables(sim.tables, include=("q", "momentum"))
        T = sim.tables
        sim.run(4)
        # GOLDEN_MOMENTUM revisits pair (37, 0) at samples 4-6 — corrupt
        # its momentum entry between visits and require SECDED to
        # correct it on the very next stage-3 read.
        injector.schedule(4, T.extra_rams["momentum"], T.pair_addr(37, 0), 7)
        injector.step(4)
        sim.run(206)
        ref = FunctionalSimulator(GRID, QTAccelConfig.momentum(seed=5))
        ref.run(210)
        assert np.array_equal(T.q.data, ref.tables.q.data)
        assert T.extra_rams["momentum"].ecc_corrected >= 1

    def test_fault_injector_rejects_unallocated_table(self):
        from repro.robustness import FaultInjector

        sim = FunctionalSimulator(GRID, QTAccelConfig.qlearning(seed=5))
        injector = FaultInjector(seed=0)
        with pytest.raises(ValueError, match="momentum"):
            injector.add_tables(sim.tables, include=("momentum",))


class TestResourceAccounting:
    def test_datapath_dsps(self):
        from repro.device.resources import datapath_dsps

        assert datapath_dsps(QTAccelConfig.qlearning()) == 4
        assert datapath_dsps(QTAccelConfig.sarsa()) == 4
        assert datapath_dsps(QTAccelConfig.momentum()) == 5
        assert datapath_dsps(QTAccelConfig.target_q()) == 6

    def test_table_blocks_extra_pair_table(self):
        from repro.device.resources import table_blocks, table_bits_total

        plain = QTAccelConfig.qlearning()
        mom = QTAccelConfig.momentum()
        tgt = QTAccelConfig.target_q()
        base = table_blocks(4096, 4, plain)
        from repro.rtl.memory import BRAM36

        pair = BRAM36.blocks_for(4096 * 4, plain.q_format.wordlen)
        assert table_blocks(4096, 4, mom) == base + pair
        # Target also allocates the argmax array (its bootstrap indexes
        # the target table at the cached online argmax).
        assert table_blocks(4096, 4, tgt) > base + pair
        qw = plain.q_format.wordlen
        assert (
            table_bits_total(4096, 4, mom) - table_bits_total(4096, 4, plain)
            == 4096 * 4 * qw
        )

    def test_estimate_resources_reports_rule(self):
        from repro.device.resources import estimate_resources

        rep = estimate_resources(4096, 4, QTAccelConfig.momentum())
        assert rep.algorithm == "momentum_qlearning"
        assert rep.dsp == 5
