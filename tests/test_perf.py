"""The performance observatory: harness, snapshots, sentinel, export.

Covers the robust-stats primitives, the bench harness's bookkeeping
(driven with an injected fake clock so no test depends on real timing),
snapshot schema round-trips, the sentinel's regression/threshold logic
across same- and cross-machine comparisons, the OpenMetrics renderer's
format conformance (golden fixture + validator), the live emitters, the
sampled stage-attribution path's off-by-default guarantee, and the
``python -m repro.perf`` CLI's exit-code contract.
"""

import copy
import json
import pathlib

import pytest

from repro.core.config import QTAccelConfig
from repro.core.pipeline import QTAccelPipeline
from repro.envs.gridworld import GridWorld
from repro.perf import (
    StageTimer,
    bootstrap_ci,
    build_snapshot,
    compare_snapshots,
    escape_label_value,
    load_snapshot,
    mad,
    median,
    next_bench_path,
    render_comparison,
    render_openmetrics,
    run_bench,
    sanitize_metric_name,
    snapshot_from_profile,
    summarize,
    validate_openmetrics,
    write_snapshot,
)
from repro.perf.__main__ import main as perf_main
from repro.perf.bench import overhead_ratios
from repro.perf.metrics_export import JsonlEmitter, OpenMetricsTextfileEmitter
from repro.perf.snapshot import SCHEMA, fingerprints_match
from repro.telemetry import CounterRegistry, TelemetrySession

GOLDEN = pathlib.Path(__file__).parent / "data" / "openmetrics_golden.txt"


@pytest.fixture(scope="module")
def mdp():
    return GridWorld.empty(8, 4).to_mdp()


@pytest.fixture()
def cfg():
    return QTAccelConfig.qlearning(seed=7, qmax_mode="follow")


# ---------------------------------------------------------------------- #
# Robust stats
# ---------------------------------------------------------------------- #


class TestStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_mad(self):
        assert mad([1.0, 2.0, 3.0, 100.0]) == 1.0  # robust to the outlier

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            mad([])
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bootstrap_deterministic_and_bounded(self):
        samples = [1.0, 1.1, 0.9, 1.05, 0.95]
        lo, hi = bootstrap_ci(samples)
        assert (lo, hi) == bootstrap_ci(samples)  # fixed resample stream
        assert min(samples) <= lo <= hi <= max(samples)

    def test_bootstrap_single_sample(self):
        assert bootstrap_ci([2.5]) == (2.5, 2.5)

    def test_summarize_schema(self):
        digest = summarize([2.0, 1.0, 3.0])
        assert digest["repeats"] == 3
        assert digest["median"] == 2.0
        assert digest["min"] == 1.0 and digest["max"] == 3.0
        assert len(digest["ci"]) == 2


# ---------------------------------------------------------------------- #
# Bench harness
# ---------------------------------------------------------------------- #


class _FakeClock:
    """Deterministic clock: every timed region lasts ``step`` seconds."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


class TestBenchHarness:
    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            run_bench(cases=["no_such_engine"], quick=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_bench(repeats=0, quick=True)
        with pytest.raises(ValueError):
            run_bench(warmup=-1, quick=True)

    def test_baseline_pulled_into_selection(self):
        results = run_bench(
            cases=["pipeline_telemetry"],
            repeats=1,
            warmup=0,
            quick=True,
            clock=_FakeClock(),
        )
        assert set(results) == {"pipeline_telemetry", "pipeline"}

    def test_repeats_and_cycles_recorded(self):
        results = run_bench(
            cases=["pipeline"], repeats=3, warmup=0, quick=True, clock=_FakeClock()
        )
        res = results["pipeline"]
        assert len(res.seconds) == 3
        assert res.seconds == [1.0, 1.0, 1.0]  # fake clock: one step per repeat
        # Fresh engine per repeat: cycle count matches one quick workload.
        assert res.cycles == pytest.approx(res.workload, rel=0.1)
        summary = res.summary()
        assert summary["cycles_per_sample"] == pytest.approx(1.0, abs=0.05)
        assert summary["modelled_msps_at_189mhz"] == pytest.approx(189.0, rel=0.05)

    def test_overhead_ratio_structure(self):
        results = run_bench(
            cases=["pipeline", "pipeline_telemetry", "pipeline_ecc"],
            repeats=2,
            warmup=0,
            quick=True,
        )
        ratios = overhead_ratios(results)
        assert ratios["pipeline_telemetry"]["baseline"] == "pipeline"
        assert ratios["pipeline_telemetry"]["budget"] == pytest.approx(1.05)
        assert ratios["pipeline_ecc"]["budget"] is None  # informational
        assert ratios["pipeline_ecc"]["ratio"] > 0


# ---------------------------------------------------------------------- #
# Snapshots
# ---------------------------------------------------------------------- #


def _tiny_snapshot():
    results = run_bench(
        cases=["pipeline"], repeats=2, warmup=0, quick=True, clock=_FakeClock()
    )
    return build_snapshot(
        results, config={"quick": True}, overheads=overhead_ratios(results)
    )


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        snap = _tiny_snapshot()
        path = write_snapshot(snap, tmp_path / "BENCH_0.json")
        loaded = load_snapshot(path)
        assert loaded == json.loads(json.dumps(snap))  # JSON-clean
        assert loaded["schema"] == SCHEMA
        assert "pipeline" in loaded["cases"]

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other/9", "cases": {}}))
        with pytest.raises(ValueError):
            load_snapshot(path)
        with pytest.raises(ValueError):
            write_snapshot({"schema": "other/9"}, tmp_path / "y.json")

    def test_missing_cases_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError):
            load_snapshot(path)

    def test_next_bench_path_numbering(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_0.json"
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        (tmp_path / "BENCH_notanumber.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_8.json"

    def test_fingerprints(self):
        snap = _tiny_snapshot()
        fp = snap["machine"]
        assert fingerprints_match(fp, dict(fp))
        other = dict(fp, python="2.7.18")
        assert not fingerprints_match(fp, other)
        assert not fingerprints_match(fp, None)

    def test_snapshot_from_profile(self, mdp, cfg):
        with TelemetrySession(trace=False) as session:
            pipe = QTAccelPipeline(mdp, cfg)
        pipe.run(300)
        snap = snapshot_from_profile(session.profile(), source="experiment:test")
        case = snap["cases"]["pipe0"]
        assert case["seconds"] is None  # no wall-clock: sentinel won't gate it
        assert case["cycles_per_sample"] == pytest.approx(1.0, abs=0.05)
        assert case["modelled_msps_at_189mhz"] == pytest.approx(189.0, rel=0.05)

    def test_non_cycle_cases_omit_cycle_keys(self):
        """Engines with no cycle notion don't carry null cycle keys."""
        results = run_bench(
            cases=["functional"], repeats=1, warmup=0, quick=True, clock=_FakeClock()
        )
        summary = results["functional"].summary()
        assert "cycles_per_sample" not in summary
        assert "modelled_msps_at_189mhz" not in summary
        # ...while cycle-accurate cases still record them (see
        # test_repeats_and_cycles_recorded).


# ---------------------------------------------------------------------- #
# Regression sentinel
# ---------------------------------------------------------------------- #


class TestSentinel:
    def test_identical_snapshots_pass(self):
        snap = _tiny_snapshot()
        result = compare_snapshots(snap, copy.deepcopy(snap))
        assert result.ok
        assert result.same_machine
        assert "PASS" in render_comparison(result)

    def test_injected_slowdown_fails(self):
        base = _tiny_snapshot()
        slow = copy.deepcopy(base)
        sec = slow["cases"]["pipeline"]["seconds"]
        sec["median"] *= 1.30  # a 30% hot-loop regression
        result = compare_snapshots(base, slow)
        assert not result.ok
        assert any(f.kind == "time" and f.failed for f in result.findings)
        assert "FAIL" in render_comparison(result)

    def test_mad_widens_threshold(self):
        base = _tiny_snapshot()
        noisy = copy.deepcopy(base)
        sec = noisy["cases"]["pipeline"]["seconds"]
        sec["median"] *= 1.15
        sec["mad"] = sec["median"]  # snapshot admits huge spread
        assert compare_snapshots(base, noisy, rel_tol=0.10, k=4.0).ok

    def test_improvement_is_not_fatal(self):
        base = _tiny_snapshot()
        fast = copy.deepcopy(base)
        fast["cases"]["pipeline"]["seconds"]["median"] *= 0.5
        result = compare_snapshots(base, fast)
        assert result.ok
        assert any(f.verdict == "improvement" for f in result.findings)

    def test_cross_machine_skips_wall_clock_but_gates_cycles(self):
        base = _tiny_snapshot()
        other = copy.deepcopy(base)
        other["machine"]["python"] = "3.99.0"
        other["cases"]["pipeline"]["seconds"]["median"] *= 10.0  # slower machine
        assert compare_snapshots(base, other).ok  # not a regression
        # ...but a cycle-count increase is architectural and still gates.
        other["cases"]["pipeline"]["cycles_per_sample"] *= 1.25
        result = compare_snapshots(base, other)
        assert any(f.kind == "cycles" and f.failed for f in result.findings)

    def test_force_absolute_overrides_fingerprint(self):
        base = _tiny_snapshot()
        other = copy.deepcopy(base)
        other["machine"]["python"] = "3.99.0"
        other["cases"]["pipeline"]["seconds"]["median"] *= 10.0
        assert not compare_snapshots(base, other, force_absolute=True).ok

    def test_budget_violation_fails(self):
        base = _tiny_snapshot()
        bloated = copy.deepcopy(base)
        bloated["overheads"]["pipeline_telemetry"] = {
            "variant": "pipeline_telemetry",
            "baseline": "pipeline",
            "ratio": 1.6,  # instrumentation tax blew up
            "budget": 1.05,
        }
        result = compare_snapshots(base, bloated)
        assert any(f.kind == "budget" and f.failed for f in result.findings)
        assert not result.ok  # budgets gate even cross-machine
        bloated["machine"]["python"] = "3.99.0"
        assert not compare_snapshots(base, bloated).ok

    def test_null_and_omitted_cycle_keys_both_tolerated(self):
        """Pre-1.1 snapshots spelled "no cycles" as explicit nulls; the
        sentinel must accept either spelling on either side."""
        base = _tiny_snapshot()
        legacy = copy.deepcopy(base)
        legacy["cases"]["pipeline"]["cycles_per_sample"] = None
        legacy["cases"]["pipeline"]["modelled_msps_at_189mhz"] = None
        modern = copy.deepcopy(base)
        del modern["cases"]["pipeline"]["cycles_per_sample"]
        del modern["cases"]["pipeline"]["modelled_msps_at_189mhz"]
        for a, b in ((legacy, modern), (modern, legacy), (base, modern), (legacy, base)):
            result = compare_snapshots(a, b)
            assert result.ok, (a["cases"]["pipeline"].keys(), b["cases"]["pipeline"].keys())

    def test_case_set_changes_reported_not_fatal(self):
        base = _tiny_snapshot()
        new = copy.deepcopy(base)
        new["cases"]["brand_new_engine"] = new["cases"]["pipeline"]
        del new["cases"]["pipeline"]
        result = compare_snapshots(base, new)
        assert result.ok
        assert sum(f.verdict == "skipped" for f in result.findings) >= 2


# ---------------------------------------------------------------------- #
# OpenMetrics renderer + conformance
# ---------------------------------------------------------------------- #


def _golden_registry() -> CounterRegistry:
    reg = CounterRegistry()
    reg.counter("pipe0.stage.S1.active").value = 42
    reg.counter("pipe0.qmax_raises").value = 7
    reg.gauge("fleet.occupancy").set(0.5)
    hist = reg.histogram("supervisor.chunk_sizes", bounds=(1, 4, 16))
    for v in (1, 3, 9, 100):
        hist.observe(v)
    return reg


class TestOpenMetrics:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("qtaccel") == "qtaccel"
        assert sanitize_metric_name("pipe0.stage.S1") == "pipe0_stage_S1"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a b/c") == "a_b_c"
        name = sanitize_metric_name("weird -> name!")
        assert sanitize_metric_name(name) == name  # idempotent

    def test_escape_label_value(self):
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'
        assert escape_label_value("back\\slash") == "back\\\\slash"

    def test_help_type_and_suffixes(self):
        text = render_openmetrics(_golden_registry())
        assert "# HELP qtaccel_counter " in text
        assert "# TYPE qtaccel_counter counter" in text
        assert "# TYPE qtaccel_gauge gauge" in text
        assert "# TYPE qtaccel_histogram histogram" in text
        assert 'qtaccel_counter_total{name="pipe0.stage.S1.active"} 42' in text
        assert 'qtaccel_gauge{name="fleet.occupancy"} 0.5' in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_openmetrics(_golden_registry())
        lines = [l for l in text.splitlines() if l.startswith("qtaccel_histogram")]
        values = [float(l.rsplit(" ", 1)[1]) for l in lines if "_bucket" in l]
        assert values == sorted(values)  # cumulative
        assert 'le="+Inf"} 4' in text  # == observation count
        assert 'qtaccel_histogram_count{name="supervisor.chunk_sizes"} 4' in text
        assert 'qtaccel_histogram_sum{name="supervisor.chunk_sizes"} 113' in text

    def test_extra_labels_escaped(self):
        text = render_openmetrics(
            _golden_registry(), labels={"run": 'fleet "a"\nb'}
        )
        assert 'run="fleet \\"a\\"\\nb"' in text
        assert validate_openmetrics(text) == []

    def test_illegal_label_name_rejected(self):
        with pytest.raises(ValueError):
            render_openmetrics(_golden_registry(), labels={"bad-label": "x"})

    def test_golden_fixture(self):
        text = render_openmetrics(_golden_registry(), labels={"run": "golden"})
        assert text == GOLDEN.read_text()
        assert validate_openmetrics(text) == []

    def test_validator_catches_breakage(self):
        good = render_openmetrics(_golden_registry())
        assert validate_openmetrics(good) == []
        assert validate_openmetrics(good.replace("# EOF\n", ""))  # missing EOF
        assert validate_openmetrics("nosuchfamily_total 1\n# EOF\n")  # no TYPE
        assert validate_openmetrics(
            "# TYPE x counter\nx_items 3\n# EOF\n"
        )  # counter without _total
        broken = good.replace('le="16"} 3', 'le="16"} 1')  # non-cumulative
        assert any("cumulative" in e for e in validate_openmetrics(broken))

    def test_fleet_run_output_conforms(self, mdp, cfg):
        """Acceptance pin: a telemetry-attached fleet run's scrape parses."""
        from repro.core.multi_pipeline import SharedPipelines

        with TelemetrySession(trace=False) as session:
            fleet = SharedPipelines(mdp, cfg)
            fleet.run(300)
        text = render_openmetrics(session.registry, labels={"run": "fleet"})
        assert validate_openmetrics(text) == []
        assert 'name="pipe0.stage.S1.active"' in text


# ---------------------------------------------------------------------- #
# Live emitters + session pulse
# ---------------------------------------------------------------------- #


class TestEmitters:
    def test_jsonl_emitter_on_batch_fleet(self, mdp, cfg, tmp_path):
        from repro.core.batch import BatchIndependentSimulator

        path = tmp_path / "fleet.metrics.jsonl"
        with TelemetrySession(trace=False) as session:
            sim = BatchIndependentSimulator(mdp, cfg, num_agents=4)
            session.add_emitter(JsonlEmitter(path, interval_s=0.0))
            sim.run(25)
        lines = path.read_text().splitlines()
        assert len(lines) == 25  # one pulse per lock-step step
        first, last = json.loads(lines[0]), json.loads(lines[-1])
        assert first["seq"] == 0 and last["seq"] == 24
        assert "counters" in first and "time_unix" in first

    def test_jsonl_counters_advance_on_shared_fleet(self, mdp, cfg, tmp_path):
        from repro.core.multi_pipeline import SharedPipelines

        path = tmp_path / "shared.metrics.jsonl"
        with TelemetrySession(trace=False) as session:
            fleet = SharedPipelines(mdp, cfg)
            session.add_emitter(JsonlEmitter(path, interval_s=0.0))
            fleet.run(100)
        lines = path.read_text().splitlines()
        assert len(lines) >= 100  # one pulse per shared cycle (plus drain)
        key = "pipe0.stage.S1.active"
        series = [json.loads(l)["counters"][key] for l in lines]
        assert series == sorted(series)  # mid-flight values, monotone
        assert series[-1] > series[0]

    def test_rate_limiting(self, tmp_path):
        clock = _FakeClock(step=0.4)
        emitter = JsonlEmitter(tmp_path / "m.jsonl", interval_s=1.0, clock=clock)
        session = TelemetrySession(trace=False)
        emitted = [emitter.maybe_emit(session) for _ in range(6)]
        # 0.4s per pulse, 1s interval: emits on pulses 1, 4 (and not between).
        assert emitted == [True, False, False, True, False, False]

    def test_textfile_emitter_atomic_rewrite(self, mdp, cfg, tmp_path):
        from repro.core.multi_pipeline import SharedPipelines

        path = tmp_path / "fleet.prom"
        with TelemetrySession(trace=False) as session:
            fleet = SharedPipelines(mdp, cfg)
            emitter = OpenMetricsTextfileEmitter(path, interval_s=0.0)
            session.add_emitter(emitter)
            fleet.run(50)
        assert emitter.emits > 1
        assert not path.with_suffix(".prom.tmp").exists()
        assert validate_openmetrics(path.read_text()) == []

    def test_supervisor_pulses(self, mdp, cfg, tmp_path):
        from repro.core.batch import BatchIndependentSimulator
        from repro.robustness.checkpoint import BatchLanes, FleetSupervisor

        path = tmp_path / "sup.jsonl"
        with TelemetrySession(trace=False) as session:
            sim = BatchIndependentSimulator(mdp, cfg, num_agents=4)
            sup = FleetSupervisor(BatchLanes(sim), interval=16)
            session.add_emitter(JsonlEmitter(path, interval_s=0.0))
            sup.run(64)
        # One emit per batch step plus one per supervisor chunk attempt.
        assert len(path.read_text().splitlines()) >= 64 + 4

    def test_pulse_without_emitters_is_noop(self, mdp, cfg):
        with TelemetrySession(trace=False) as session:
            pipe = QTAccelPipeline(mdp, cfg)
        session.pulse()  # nothing registered, nothing raised
        pipe.run(10)


# ---------------------------------------------------------------------- #
# Sampled stage attribution
# ---------------------------------------------------------------------- #


class TestStageTimer:
    def test_disabled_by_default(self, mdp, cfg):
        pipe = QTAccelPipeline(mdp, cfg)
        assert pipe._stage_timer is None  # the pointer-test-only fast path

    def test_validation(self):
        with pytest.raises(ValueError):
            StageTimer(0)

    def test_attach_and_sample(self, mdp, cfg):
        pipe = QTAccelPipeline(mdp, cfg)
        timer = StageTimer(sample_every=8).attach(pipe)
        assert pipe._stage_timer is timer
        pipe.run(200)
        summary = timer.summary()
        # ~one sampled cycle per 8; the drain tail adds a few cycles.
        assert summary["sampled_cycles"] == pytest.approx(200 / 8, rel=0.2)
        fractions = summary["fractions"]
        assert set(fractions) == {"S1", "S2", "S3", "S4"}
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert timer.total_seconds > 0

    def test_sampling_does_not_change_results(self, mdp, cfg):
        import numpy as np

        plain = QTAccelPipeline(mdp, cfg)
        plain.run(300)
        timed = QTAccelPipeline(mdp, cfg)
        StageTimer(sample_every=4).attach(timed)
        timed.run(300)
        assert np.array_equal(plain.q_float(), timed.q_float())
        assert plain.stats == timed.stats

    def test_reset(self):
        timer = StageTimer()
        timer.commit([0.0, 1.0, 2.0, 3.0, 4.0])
        assert timer.sampled_cycles == 1
        timer.reset()
        assert timer.sampled_cycles == 0
        assert timer.total_seconds == 0.0


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #


class TestCli:
    def test_run_compare_report_round_trip(self, tmp_path, capsys):
        out = tmp_path / "BENCH_t.json"
        assert (
            perf_main(
                [
                    "run",
                    "--quick",
                    "--repeats",
                    "2",
                    "--warmup",
                    "0",
                    "--cases",
                    "pipeline",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()
        assert perf_main(["compare", str(out), str(out)]) == 0
        assert perf_main(["report", str(out)]) == 0
        captured = capsys.readouterr()
        assert "sentinel: PASS" in captured.out
        assert "bench snapshot" in captured.out

    def test_compare_detects_injected_regression(self, tmp_path, capsys):
        out = tmp_path / "BENCH_t.json"
        perf_main(
            [
                "run",
                "--quick",
                "--repeats",
                "2",
                "--warmup",
                "0",
                "--cases",
                "pipeline",
                "--no-stages",
                "--output",
                str(out),
            ]
        )
        # Zero the recorded spread so the threshold is pure rel_tol: a
        # 2-repeat quick run's MAD can legitimately widen the gate past
        # the injected 30%, which is the sentinel working as designed.
        base = json.loads(out.read_text())
        base["cases"]["pipeline"]["seconds"]["mad"] = 0.0
        out.write_text(json.dumps(base))
        slow = copy.deepcopy(base)
        slow["cases"]["pipeline"]["seconds"]["median"] *= 1.3
        slow_path = tmp_path / "BENCH_slow.json"
        slow_path.write_text(json.dumps(slow))
        assert perf_main(["compare", str(out), str(slow_path)]) == 1
        assert "sentinel: FAIL" in capsys.readouterr().out

    def test_bad_inputs_exit_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert perf_main(["compare", str(missing), str(missing)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong"}')
        assert perf_main(["report", str(bad)]) == 2
        assert perf_main(["run", "--cases", "bogus", "--quick"]) == 2
        assert perf_main(["fleet", "--smoke", "--workers", "nope"]) == 2


class TestShardedSweep:
    def test_quick_sweep_records_both_speedups(self):
        from repro.perf.fleet import (
            check_sharded_speedup,
            render_sharded_throughput,
            run_sharded_throughput,
        )

        record = run_sharded_throughput(
            worker_counts=(1, 2),
            n_lanes=16,
            repeats=2,
            warmup=0,
            quick=True,
            mp_context="fork",
        )
        assert set(record["points"]) == {"1", "2"}
        for point in record["points"].values():
            assert point["sharded"]["updates_per_sec"] > 0
            assert point["speedup_vs_vectorized"] is not None
            assert point["speedup_vs_scalar"] is not None
        # The gate reads the largest worker count by default.
        ok, message = check_sharded_speedup(record, 1e9, vs="scalar")
        assert not ok and "workers=2" in message
        ok, _ = check_sharded_speedup(record, 0.0, vs="vectorized", at_workers=1)
        assert ok
        with pytest.raises(ValueError, match="vs must be"):
            check_sharded_speedup(record, 1.0, vs="gpu")
        text = render_sharded_throughput(record)
        assert "workers" in text and "n_lanes=16" in text

    def test_snapshot_embeds_sharded_record(self, tmp_path):
        from repro.perf.fleet import run_sharded_throughput

        results = run_bench(cases=["functional"], repeats=1, warmup=0, quick=True)
        record = run_sharded_throughput(
            worker_counts=(2,), n_lanes=8, repeats=1, warmup=0, quick=True,
            mp_context="fork",
        )
        snap = build_snapshot(results, sharded_throughput=record)
        path = write_snapshot(snap, tmp_path / "BENCH_t.json")
        loaded = load_snapshot(path)
        point = loaded["sharded_throughput"]["points"]["2"]
        assert point["speedup_vs_scalar"] is not None

    def test_cli_sharded_smoke_gate(self, capsys):
        assert (
            perf_main(
                [
                    "fleet", "--smoke", "--repeats", "1",
                    "--workers", "2", "--lanes", "16",
                    "--min-speedup", "0.0001", "--vs", "scalar",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sharded fleet throughput" in out
        assert "speedup vs scalar" in out


# ---------------------------------------------------------------------- #
# Telemetry report delta mode + error paths (satellite)
# ---------------------------------------------------------------------- #


class TestTelemetryReportDeltas:
    def _profile(self, mdp, cfg, path, samples):
        with TelemetrySession(trace=False) as session:
            pipe = QTAccelPipeline(mdp, cfg)
        pipe.run(samples)
        session.export_profile(path)

    def test_delta_table(self, mdp, cfg, tmp_path, capsys):
        from repro.telemetry.report import main as report_main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._profile(mdp, cfg, a, 100)
        self._profile(mdp, cfg, b, 200)
        assert report_main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "telemetry profile delta" in out
        assert "counter(s) differ" in out
        assert "retired 100 -> 200" in out
        assert "pipe0.stage.S1.active" in out  # longer run, bigger counter

    def test_identical_profiles_all_unchanged(self, mdp, cfg, tmp_path, capsys):
        from repro.telemetry.report import main as report_main

        a = tmp_path / "a.json"
        self._profile(mdp, cfg, a, 50)
        assert report_main([str(a), str(a)]) == 0
        assert "0 counter(s) differ" in capsys.readouterr().out

    def test_missing_file_is_a_clear_error(self, tmp_path, capsys):
        from repro.telemetry.report import main as report_main

        missing = tmp_path / "gone.profile.json"
        assert report_main([str(missing)]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "gone.profile.json" in err

    def test_malformed_json_is_a_clear_error(self, tmp_path, capsys):
        from repro.telemetry.report import main as report_main

        bad = tmp_path / "bad.profile.json"
        bad.write_text("{not json")
        assert report_main([str(bad)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_second_file_errors_too(self, mdp, cfg, tmp_path, capsys):
        from repro.telemetry.report import main as report_main

        a = tmp_path / "a.json"
        self._profile(mdp, cfg, a, 50)
        assert report_main([str(a), str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_delta_rejects_trace_files(self, mdp, cfg, tmp_path, capsys):
        from repro.telemetry.report import main as report_main

        a, t = tmp_path / "a.json", tmp_path / "t.json"
        self._profile(mdp, cfg, a, 50)
        t.write_text(json.dumps({"traceEvents": []}))
        assert report_main([str(a), str(t)]) == 2
        assert "trace" in capsys.readouterr().err
