"""Direct unit tests for the forwarding network building blocks."""

import pytest

from repro.core.config import QTAccelConfig
from repro.core.hazards import (
    ForwardingView,
    Sample,
    conflict_stage1,
    conflict_stage2,
    fix_operand_q,
    fix_operand_qnext,
)
from repro.core.tables import AcceleratorTables
from repro.envs.random_mdp import random_dense_mdp


@pytest.fixture
def tables():
    mdp = random_dense_mdp(16, 4, seed=1)
    return AcceleratorTables(mdp, QTAccelConfig.qlearning())


def mk_sample(tables, s, a, q_new, index=0):
    smp = Sample(index=index, s=s, a=a, pair=tables.pair_addr(s, a))
    smp.q_new = q_new
    return smp


class TestForwardingView:
    def test_read_q_pass_through(self, tables):
        tables.q.write_now(tables.pair_addr(3, 1), 42)
        view = ForwardingView(tables, ())
        assert view.read_q(3, 1) == 42

    def test_read_q_forwards_matching_pair(self, tables):
        src = mk_sample(tables, 3, 1, q_new=99)
        view = ForwardingView(tables, (src,))
        assert view.read_q(3, 1) == 99
        assert view.read_q(3, 2) == 0  # other pairs untouched

    def test_youngest_source_wins(self, tables):
        old = mk_sample(tables, 3, 1, q_new=10, index=0)
        new = mk_sample(tables, 3, 1, q_new=20, index=1)
        view = ForwardingView(tables, (old, new))
        assert view.read_q(3, 1) == 20

    def test_none_sources_skipped(self, tables):
        view = ForwardingView(tables, (None, mk_sample(tables, 2, 0, q_new=7), None))
        assert view.read_q(2, 0) == 7

    def test_read_qmax_monotonic_overlay(self, tables):
        tables.qmax.write_now(5, 50)
        tables.qmax_action.write_now(5, 2)
        low = mk_sample(tables, 5, 1, q_new=30)  # below current max
        high = mk_sample(tables, 5, 3, q_new=70)
        view = ForwardingView(tables, (low, high))
        assert view.read_qmax(5) == (70, 3)
        view_low = ForwardingView(tables, (low,))
        assert view_low.read_qmax(5) == (50, 2)

    def test_read_qmax_follow_overlay(self):
        mdp = random_dense_mdp(16, 4, seed=1)
        tables = AcceleratorTables(mdp, QTAccelConfig.qlearning(qmax_mode="follow"))
        tables.qmax.write_now(5, 50)
        tables.qmax_action.write_now(5, 2)
        # A pending write to the cached argmax action follows it down.
        down = mk_sample(tables, 5, 2, q_new=10)
        view = ForwardingView(tables, (down,))
        assert view.read_qmax(5) == (10, 2)

    def test_overlay_sequence_matches_commit_sequence(self, tables):
        """Applying sources in order == committing them in order."""
        writes = [(5, 0, 30), (5, 1, 20), (5, 0, 25), (5, 3, 40)]
        sources = [mk_sample(tables, s, a, v, i) for i, (s, a, v) in enumerate(writes)]
        view = ForwardingView(tables, sources)
        forwarded = view.read_qmax(5)
        for s, a, v in writes:
            tables.writeback_now(s, a, v)
        assert forwarded == tables.read_qmax(5)


class TestOperandFixups:
    def test_fix_q_sa(self, tables):
        smp = mk_sample(tables, 2, 1, q_new=0)
        smp.q_sa = 5
        src = mk_sample(tables, 2, 1, q_new=77)
        fix_operand_q(smp, (src,))
        assert smp.q_sa == 77

    def test_fix_q_sa_ignores_other_pairs(self, tables):
        smp = mk_sample(tables, 2, 1, q_new=0)
        smp.q_sa = 5
        fix_operand_q(smp, (mk_sample(tables, 2, 2, q_new=77),))
        assert smp.q_sa == 5

    def test_fix_qnext_exploited_uses_qmax_rule(self, tables):
        smp = mk_sample(tables, 2, 1, q_new=0)
        smp.s_next = 7
        smp.exploited = True
        smp.q_next = 10
        smp.a_next = 0
        src = mk_sample(tables, 7, 3, q_new=55)
        fix_operand_qnext(smp, (src,), "monotonic")
        assert smp.q_next == 55
        assert smp.a_next == 3

    def test_fix_qnext_explored_uses_pair(self, tables):
        smp = mk_sample(tables, 2, 1, q_new=0)
        smp.s_next = 7
        smp.exploited = False
        smp.a_next = 2
        smp.pair_next = tables.pair_addr(7, 2)
        smp.q_next = 10
        src = mk_sample(tables, 7, 2, q_new=3)
        fix_operand_qnext(smp, (src,), "monotonic")
        assert smp.q_next == 3  # exact pair match, even when lower

    def test_terminal_operand_pinned(self, tables):
        smp = mk_sample(tables, 2, 1, q_new=0)
        smp.s_next = 7
        smp.terminal_next = True
        smp.exploited = True
        smp.q_next = 0
        fix_operand_qnext(smp, (mk_sample(tables, 7, 0, q_new=99),), "monotonic")
        assert smp.q_next == 0


class TestConflictPredicates:
    def test_stage1_state_match(self, tables):
        inflight = (mk_sample(tables, 4, 0, 0), None)
        assert conflict_stage1(4, inflight)
        assert not conflict_stage1(5, inflight)

    def test_stage2_next_state_match(self, tables):
        inflight = (None, mk_sample(tables, 9, 2, 0))
        assert conflict_stage2(9, inflight)
        assert not conflict_stage2(8, inflight)

    def test_empty_inflight(self):
        assert not conflict_stage1(0, (None, None, None))
        assert not conflict_stage2(0, ())
