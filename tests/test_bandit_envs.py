"""Tests for the bandit environments."""

import numpy as np
import pytest

from repro.envs.bandits import (
    BanditEnv,
    BernoulliArm,
    NormalArm,
    StatefulBanditEnv,
    channel_selection_env,
)


class TestArms:
    def test_normal_expected(self):
        assert NormalArm(2.0, 0.5).expected() == 2.0

    def test_bernoulli_expected(self):
        assert BernoulliArm(0.3).expected() == 0.3

    def test_bernoulli_validates(self):
        with pytest.raises(ValueError):
            BernoulliArm(1.5)


class TestBanditEnv:
    def test_best_arm(self):
        env = BanditEnv([NormalArm(1.0), NormalArm(3.0), NormalArm(2.0)])
        assert env.best_arm == 1
        assert env.best_mean == 3.0

    def test_normal_pull_statistics(self):
        env = BanditEnv([NormalArm(5.0, 1.0)], seed=3)
        xs = np.array([env.pull(0) for _ in range(5000)])
        assert abs(xs.mean() - 5.0) < 0.1
        assert abs(xs.std() - 1.0) < 0.1

    def test_bernoulli_pull_statistics(self):
        env = BanditEnv([BernoulliArm(0.3)], seed=4)
        xs = np.array([env.pull(0) for _ in range(5000)])
        assert set(np.unique(xs)).issubset({0.0, 1.0})
        assert abs(xs.mean() - 0.3) < 0.05

    def test_pull_counts(self):
        env = BanditEnv([NormalArm(0.0), NormalArm(1.0)], seed=1)
        env.pull(0)
        env.pull(1)
        env.pull(1)
        assert list(env.pulls) == [1, 2]

    def test_arms_independent_streams(self):
        env = BanditEnv([NormalArm(0.0), NormalArm(0.0)], seed=1)
        a = [env.pull(0) for _ in range(20)]
        b = [env.pull(1) for _ in range(20)]
        assert a != b

    def test_regret_of(self):
        env = BanditEnv([NormalArm(1.0), NormalArm(2.0)])
        regret = env.regret_of(np.array([0, 0, 1]))
        assert list(regret) == [1.0, 2.0, 2.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BanditEnv([])

    def test_rejects_unknown_arm_type(self):
        with pytest.raises(TypeError):
            BanditEnv([object()])

    def test_deterministic_per_seed(self):
        a = BanditEnv([NormalArm(1.0)], seed=9)
        b = BanditEnv([NormalArm(1.0)], seed=9)
        assert [a.pull(0) for _ in range(10)] == [b.pull(0) for _ in range(10)]


class TestStatefulBandit:
    def test_joint_state_encoding(self):
        env = StatefulBanditEnv([1, 2, 3], [0, 0, 0], seed=1)
        env.arm_states[:] = [1, 0, 1]
        assert env.joint_state == 0b101
        assert env.num_joint_states == 8

    def test_expected_switches_with_state(self):
        env = StatefulBanditEnv([1.0], [-1.0], seed=1)
        env.arm_states[0] = 0
        assert env.expected(0) == 1.0
        env.arm_states[0] = 1
        assert env.expected(0) == -1.0

    def test_chains_flip_over_time(self):
        env = StatefulBanditEnv([1.0, 1.0], [0.0, 0.0], flip_p=0.5, seed=2)
        states = set()
        for _ in range(200):
            env.pull(0)
            states.add(env.joint_state)
        assert len(states) > 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StatefulBanditEnv([1.0, 2.0], [0.0])


class TestChannelSelection:
    def test_default_scenario(self):
        env = channel_selection_env(8, seed=7)
        assert env.num_arms == 8
        # Shannon rates for 2..20 dB SNR land in (1, 7) bits/s/Hz
        means = [a.expected() for a in env.arms]
        assert all(0.5 < m < 8.0 for m in means)

    def test_deterministic(self):
        a = channel_selection_env(4, seed=3)
        b = channel_selection_env(4, seed=3)
        assert [x.expected() for x in a.arms] == [x.expected() for x in b.arms]
